//! `bench_compare` — the cross-run benchmark regression gate.
//!
//! ```text
//! cargo run -p hmp-bench --release --bin bench_compare -- \
//!     --baseline baselines --current artifacts [--tolerance 0.02]
//! ```
//!
//! Compares every `BENCH_*.json` in the baseline directory against the
//! file of the same name in the current directory (see
//! [`hmp_bench::compare`]): documents must carry matching
//! `schema_version`s, and any value drift beyond the tolerance is a
//! regression. Machine-dependent numbers (`*_ns` wall timings, `*_cps`
//! rates, `speedup`) are excluded, so the gate is stable across hosts.
//!
//! Exit status: 0 when every pair matches, 1 on any regression or
//! missing file, 2 for a usage error.

use hmp_bench::compare::{compare_docs, DEFAULT_TOLERANCE};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
bench_compare — diff current BENCH_*.json output against a committed baseline

USAGE:
  bench_compare --baseline <DIR> --current <DIR> [--tolerance <REL>]

OPTIONS:
  --baseline <DIR>   directory holding the committed baseline BENCH_*.json files
  --current <DIR>    directory holding the freshly generated BENCH_*.json files
  --tolerance <REL>  allowed relative numeric drift                [default: 0]
  -h, --help         print this help
";

struct Cli {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a value")?),
            "--current" => current = Some(args.next().ok_or("--current needs a value")?),
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance: bad value {v:?}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err(format!("--tolerance: {tolerance} outside [0, 1)"));
                }
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Cli {
        baseline: PathBuf::from(baseline.ok_or("--baseline is required")?),
        current: PathBuf::from(current.ok_or("--current is required")?),
        tolerance,
    })
}

/// `BENCH_*.json` file names in a directory, sorted for a stable report.
fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

fn main() {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("bench_compare: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let names = bench_files(&cli.baseline).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(2);
    });
    if names.is_empty() {
        eprintln!(
            "bench_compare: no BENCH_*.json files in baseline {}",
            cli.baseline.display()
        );
        std::process::exit(2);
    }

    let mut failures = 0usize;
    for name in &names {
        let base_path = cli.baseline.join(name);
        let cur_path = cli.current.join(name);
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", base_path.display()));
        let cur = match std::fs::read_to_string(&cur_path) {
            Ok(s) => s,
            Err(_) => {
                println!("FAIL {name}: baseline exists but current run did not produce it");
                failures += 1;
                continue;
            }
        };
        match compare_docs(&base, &cur, cli.tolerance) {
            Ok(findings) if findings.is_empty() => println!("ok   {name}"),
            Ok(findings) => {
                println!("FAIL {name}: {} difference(s)", findings.len());
                for f in findings.iter().take(20) {
                    println!("       {f}");
                }
                if findings.len() > 20 {
                    println!("       ... and {} more", findings.len() - 20);
                }
                failures += 1;
            }
            Err(e) => {
                println!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }

    // New benches in the current run are informational — they become
    // gated once their baseline is committed.
    if let Ok(current_names) = bench_files(&cli.current) {
        for name in current_names {
            if !names.contains(&name) {
                println!("note {name}: no committed baseline yet (not compared)");
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} of {} document(s) regressed (tolerance {})",
            names.len(),
            cli.tolerance
        );
        std::process::exit(1);
    }
    println!(
        "bench_compare: {} document(s) match the baseline (tolerance {})",
        names.len(),
        cli.tolerance
    );
}
