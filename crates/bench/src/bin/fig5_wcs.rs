//! Regenerates paper Figure 5: worst-case-scenario execution-time ratios.
//!
//! Both tasks hammer the same shared lines under strict lock alternation;
//! the series plot execution time relative to the cache-disabled baseline
//! for the software solution and the proposed wrapper/snoop-logic
//! approach, for exec_time ∈ {1, 2, 4} and 1–32 lines per iteration.

use hmp_bench::print_figure;
use hmp_workloads::Scenario;

fn main() {
    print_figure(
        Scenario::Worst,
        "Figure 5 — worst case scenario (PowerPC755 + ARM920T, 13-cycle miss penalty)",
    );
}
