//! Regenerates paper Figure 7: typical-case-scenario execution-time
//! ratios.
//!
//! Each task picks its shared block uniformly among 10 blocks before
//! every critical section, so cross-processor conflicts happen on ~10 %
//! of iterations — between the WCS (always conflict) and BCS (never
//! conflict) extremes.

use hmp_bench::print_figure;
use hmp_workloads::Scenario;

fn main() {
    print_figure(
        Scenario::Typical,
        "Figure 7 — typical case scenario (PowerPC755 + ARM920T, 13-cycle miss penalty)",
    );
}
