//! Machine-readable `BENCH_*.json` emission for the figure binaries.
//!
//! The figure binaries print human-readable tables; CI and downstream
//! tooling want the same numbers without scraping stdout. Setting the
//! `HMP_BENCH_JSON` environment variable to an output directory (or `1`
//! for the current directory) makes each binary also write a
//! `BENCH_<figure>.json` file next to its table. The JSON is hand-rolled
//! (the workspace builds against an offline registry, so no serde) and
//! checked against [`hmp_sim::export::validate_json`] in tests.

use crate::RatioRow;
use hmp_sim::export::SCHEMA_VERSION;
use hmp_workloads::Scenario;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The `BENCH_*.json` stem for a Figures 5–7 scenario.
pub fn figure_slug(scenario: Scenario) -> &'static str {
    match scenario {
        Scenario::Worst => "fig5_wcs",
        Scenario::Best => "fig6_bcs",
        Scenario::Typical => "fig7_tcs",
    }
}

/// Renders one Figures 5–7 sweep as a JSON document.
pub fn figure_rows_json(figure: &str, scenario: Scenario, rows: &[RatioRow]) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        concat!(
            r#""schema_version":{},"figure":"{}","scenario":"{:?}","#,
            r#""baseline":"cache_disabled","rows":["#
        ),
        SCHEMA_VERSION, figure, scenario,
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"lines":{},"exec_time":{},"disabled":{},"software":{},"proposed":{},"#,
                r#""software_ratio":{:.6},"proposed_ratio":{:.6}}}"#
            ),
            r.lines,
            r.exec_time,
            r.disabled,
            r.software,
            r.proposed,
            r.software_ratio(),
            r.proposed_ratio(),
        );
    }
    out.push_str("]}");
    out
}

/// Where `BENCH_*.json` files go: the `HMP_BENCH_JSON` directory, `.` for
/// `1`/`true`, `None` when unset/empty/`0` (the default — no files).
pub fn bench_json_dir() -> Option<PathBuf> {
    match std::env::var("HMP_BENCH_JSON") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" || v == "true" => Some(PathBuf::from(".")),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// Writes `BENCH_<figure>.json` into the [`bench_json_dir`], creating the
/// directory if needed. Returns the written path, or `None` when emission
/// is disabled.
///
/// # Panics
///
/// Panics if the directory or file cannot be written — a figure run asked
/// to produce an artefact must not silently drop it.
pub fn maybe_write_bench_json(figure: &str, json: &str) -> Option<PathBuf> {
    let dir = bench_json_dir()?;
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("HMP_BENCH_JSON dir {}: {e}", dir.display()));
    let path = dir.join(format!("BENCH_{figure}.json"));
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::export::validate_json;

    fn rows() -> Vec<RatioRow> {
        vec![
            RatioRow {
                lines: 1,
                exec_time: 1,
                disabled: 1000,
                software: 800,
                proposed: 600,
            },
            RatioRow {
                lines: 32,
                exec_time: 4,
                disabled: 9000,
                software: 7000,
                proposed: 4500,
            },
        ]
    }

    #[test]
    fn figure_rows_json_is_valid_and_complete() {
        let json = figure_rows_json("fig5_wcs", Scenario::Worst, &rows());
        validate_json(&json).expect("figure JSON must parse");
        assert!(json.starts_with(r#"{"schema_version":1,"#), "{json}");
        assert!(json.contains(r#""figure":"fig5_wcs""#), "{json}");
        assert!(json.contains(r#""scenario":"Worst""#), "{json}");
        assert!(json.contains(r#""lines":32"#), "{json}");
        assert!(json.contains(r#""proposed":4500"#), "{json}");
        assert!(json.contains(r#""proposed_ratio":0.5"#), "{json}");
    }

    #[test]
    fn empty_sweep_is_still_valid_json() {
        let json = figure_rows_json("fig6_bcs", Scenario::Best, &[]);
        validate_json(&json).expect("empty sweep must still parse");
        assert!(json.ends_with("\"rows\":[]}"), "{json}");
    }

    #[test]
    fn every_scenario_has_a_distinct_slug() {
        let slugs = [
            figure_slug(Scenario::Worst),
            figure_slug(Scenario::Best),
            figure_slug(Scenario::Typical),
        ];
        assert_eq!(slugs, ["fig5_wcs", "fig6_bcs", "fig7_tcs"]);
    }
}
