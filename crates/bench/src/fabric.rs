//! Fabric fairness sweep: master count × arbitration × segmentation.
//!
//! Each grid cell runs the WCS workload on a homogeneous N-master MESI
//! fabric ([`PlatformPick::Fabric`]) under one arbitration discipline,
//! executes it under **both** simulation kernels, and records per-master
//! grant counts, grant shares, acquire-wait histograms and bus
//! utilization. The fairness story mirrors the queueing-model comparison
//! of FCFS against fixed-priority service (arXiv:1004.3560): round-robin
//! and FCFS grant shares approach 1/N under symmetric load, while fixed
//! priority starves the lowest-priority master outright.

use crate::chaos::outcome_key;
use crate::sweep::par_map;
use hmp_bus::ArbitrationPolicy;
use hmp_cache::ProtocolKind;
use hmp_platform::{Kernel, RunResult, Strategy};
use hmp_sim::TimeSeriesSpec;
use hmp_workloads::{prepare, MicrobenchParams, PlatformPick, RunSpec, Scenario};
use std::fmt::Write as _;

/// Cycle budget per fabric run. Fixed-priority cells starve the tail
/// masters out of the turn lock and never complete; the budget bounds
/// them while leaving fair disciplines room to finish.
pub const FABRIC_MAX_CYCLES: u64 = 2_000_000;

/// Base telemetry window for fabric runs. At the 2M-cycle budget the
/// registry decimates a couple of times, landing on a few dozen windows
/// — enough resolution to see per-window grant shares without growing
/// the JSON unreasonably.
pub const FABRIC_TS_WINDOW: u64 = 8192;

/// A window must carry at least this many grants *per master* before
/// its shares count toward windowed fairness: the startup ramp and the
/// completion tail have too few grants for shares to be meaningful.
pub const FABRIC_WINDOW_MIN_GRANTS_PER_MASTER: u64 = 16;

/// Master counts the sweep covers; the reduced (CI smoke) grid keeps the
/// two-and-four-master columns.
pub fn fabric_masters(reduced: bool) -> &'static [u8] {
    if reduced {
        &[2, 4]
    } else {
        &[2, 3, 4, 6, 8]
    }
}

/// Every arbitration discipline the bus supports.
pub const FABRIC_ARBITRATIONS: [ArbitrationPolicy; 3] = [
    ArbitrationPolicy::RoundRobin,
    ArbitrationPolicy::FixedPriority,
    ArbitrationPolicy::Fcfs,
];

/// Segment counts: a flat bus and a two-segment bridged fabric.
pub const FABRIC_SEGMENTS: [u8; 2] = [1, 2];

/// Stable snake_case key for an arbitration discipline (JSON field
/// value).
pub fn arbitration_key(arbitration: ArbitrationPolicy) -> &'static str {
    match arbitration {
        ArbitrationPolicy::RoundRobin => "round_robin",
        ArbitrationPolicy::FixedPriority => "fixed_priority",
        ArbitrationPolicy::Fcfs => "fcfs",
    }
}

/// The symmetric WCS workload every fabric cell runs: every master
/// contends for the same lock-guarded lines, so a fair arbiter should
/// hand out grants evenly.
pub fn fabric_params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 4,
        exec_time: 2,
        outer_iters: 4,
        seed: 11,
        ..Default::default()
    }
}

/// Builds the [`RunSpec`] for one fabric cell (spans on, so the
/// acquire-wait histogram is populated).
pub fn fabric_spec(masters: u8, segments: u8, arbitration: ArbitrationPolicy) -> RunSpec {
    let mut spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, fabric_params())
        .on(PlatformPick::Fabric {
            protocol: ProtocolKind::Mesi,
            masters,
            segments,
        })
        .with_arbitration(arbitration)
        .with_spans(64)
        .with_timeseries(TimeSeriesSpec::with_window(FABRIC_TS_WINDOW));
    spec.max_cycles = FABRIC_MAX_CYCLES;
    spec
}

/// One finished fabric cell.
#[derive(Debug, Clone)]
pub struct FabricCell {
    /// Master count N.
    pub masters: u8,
    /// Bus segments (1 = flat, 2 = bridged).
    pub segments: u8,
    /// Arbitration discipline.
    pub arbitration: ArbitrationPolicy,
    /// Per-master grant counts, in master order.
    pub grants: Vec<u64>,
    /// The run result (from the fast-forward kernel).
    pub result: RunResult,
    /// Whether the two kernels produced byte-identical results *and*
    /// identical per-master grant counts.
    pub kernels_agree: bool,
}

impl FabricCell {
    /// Per-master grant shares (each master's fraction of all grants).
    pub fn shares(&self) -> Vec<f64> {
        let total: u64 = self.grants.iter().sum();
        if total == 0 {
            return vec![0.0; self.grants.len()];
        }
        self.grants
            .iter()
            .map(|&g| g as f64 / total as f64)
            .collect()
    }

    /// Largest deviation of any master's grant share from the fair 1/N.
    pub fn max_share_error(&self) -> f64 {
        let fair = 1.0 / self.grants.len() as f64;
        self.shares()
            .iter()
            .map(|s| (s - fair).abs())
            .fold(0.0, f64::max)
    }

    /// Bus utilization: fraction of elapsed cycles spent granting or
    /// moving data.
    pub fn utilization(&self) -> f64 {
        let cycles = self.result.cycles_u64();
        if cycles == 0 {
            return 0.0;
        }
        (self.result.bus.grants + self.result.bus.data_cycles) as f64 / cycles as f64
    }

    /// The grant threshold below which a window's shares are ignored.
    pub fn window_min_grants(&self) -> u64 {
        FABRIC_WINDOW_MIN_GRANTS_PER_MASTER * self.grants.len() as u64
    }

    /// Windows whose grant shares the fairness check judges: every
    /// window that cleared [`Self::window_min_grants`], minus the final
    /// busy window when there is more than one. Masters complete at
    /// different cycles, so the drain window at the end of a run is
    /// *inherently* skewed — one task's tail runs unopposed — and says
    /// nothing about arbitration fairness. With a single busy window the
    /// windowed check degenerates to the whole-run share check, which
    /// already covers the drain.
    fn judged_windows(&self) -> Vec<usize> {
        let Some(snap) = &self.result.timeseries else {
            return Vec::new();
        };
        let mut busy: Vec<usize> = (0..snap.samples())
            .filter(|&i| snap.window_grants(i) >= self.window_min_grants())
            .collect();
        if busy.len() > 1 {
            busy.pop();
        }
        busy
    }

    /// Telemetry windows the fairness check judges (see
    /// [`Self::judged_windows`]).
    pub fn busy_windows(&self) -> usize {
        self.judged_windows().len()
    }

    /// *Windowed* fairness: the largest deviation of any master's grant
    /// share from the fair 1/N inside any judged window. Whole-run
    /// shares can hide transient starvation that averages out; this
    /// can't.
    pub fn max_windowed_share_error(&self) -> f64 {
        let Some(snap) = &self.result.timeseries else {
            return 0.0;
        };
        let fair = 1.0 / self.grants.len() as f64;
        let mut worst = 0.0f64;
        for i in self.judged_windows() {
            for s in snap.grant_shares(i) {
                worst = worst.max((s - fair).abs());
            }
        }
        worst
    }
}

/// Runs one cell under both kernels and compares them.
pub fn run_cell(masters: u8, segments: u8, arbitration: ArbitrationPolicy) -> FabricCell {
    let spec = fabric_spec(masters, segments, arbitration);
    let mut fast_sys = prepare(&spec.with_kernel(Kernel::FastForward));
    let fast = fast_sys.run(spec.max_cycles);
    let fast_grants = fast_sys.master_grants().to_vec();
    let mut step_sys = prepare(&spec.with_kernel(Kernel::Step));
    let step = step_sys.run(spec.max_cycles);
    let kernels_agree = fast == step && fast_grants == step_sys.master_grants();
    FabricCell {
        masters,
        segments,
        arbitration,
        grants: fast_grants,
        result: fast,
        kernels_agree,
    }
}

/// Runs the whole grid in parallel (every cell is deterministic and
/// independent), in (masters, arbitration, segments) row order.
pub fn run_grid(reduced: bool, workers: usize) -> Vec<FabricCell> {
    let mut points = Vec::new();
    for &masters in fabric_masters(reduced) {
        for arbitration in FABRIC_ARBITRATIONS {
            for segments in FABRIC_SEGMENTS {
                points.push((masters, segments, arbitration));
            }
        }
    }
    par_map(&points, workers, |&(masters, segments, arbitration)| {
        run_cell(masters, segments, arbitration)
    })
}

/// Renders the sweep as the `BENCH_FABRIC.json` document.
pub fn fabric_json(reduced: bool, cells: &[FabricCell]) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        concat!(
            r#""schema_version":{},"bench":"fabric_sweep","reduced":{},"scenario":"Worst","#,
            r#""strategy":"proposed","max_cycles":{},"ts_window":{},"cells":["#
        ),
        hmp_sim::export::SCHEMA_VERSION,
        reduced,
        FABRIC_MAX_CYCLES,
        FABRIC_TS_WINDOW,
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"masters":{},"segments":{},"arbitration":"{}","outcome":"{}","#,
                r#""cycles":{},"kernels_agree":{},"utilization":{:.6},"#,
                r#""max_share_error":{:.6},"max_windowed_share_error":{:.6},"#,
                r#""busy_windows":{},"grants":["#
            ),
            c.masters,
            c.segments,
            arbitration_key(c.arbitration),
            outcome_key(c.result.outcome),
            c.result.cycles_u64(),
            c.kernels_agree,
            c.utilization(),
            c.max_share_error(),
            c.max_windowed_share_error(),
            c.busy_windows(),
        );
        for (j, g) in c.grants.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{g}");
        }
        out.push_str(r#"],"shares":["#);
        for (j, s) in c.shares().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s:.6}");
        }
        out.push_str("],");
        match &c.result.timeseries {
            Some(snap) => {
                let _ = write!(
                    out,
                    r#""windows":{{"window_cycles":{},"series":["#,
                    snap.effective_window()
                );
                for i in 0..snap.samples() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        r#"{{"start":{},"grants":{},"utilization":{:.6},"shares":["#,
                        snap.window_start(i),
                        snap.window_grants(i),
                        snap.utilization(i),
                    );
                    for (j, s) in snap.grant_shares(i).iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{s:.6}");
                    }
                    out.push_str("]}");
                }
                out.push_str("]},");
            }
            None => out.push_str(r#""windows":null,"#),
        }
        if let Some(m) = &c.result.metrics {
            let h = &m.acquire_wait;
            let _ = write!(
                out,
                r#""acquire_wait":{{"count":{},"mean":{:.3},"max":{},"buckets":["#,
                h.count(),
                h.mean(),
                h.max(),
            );
            for (j, (lo, hi, n)) in h.iter_nonzero().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}}");
        } else {
            out.push_str(r#""acquire_wait":null}"#);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_platform::RunOutcome;
    use hmp_sim::export::validate_json;

    #[test]
    fn grid_axes_cover_the_issue_floor() {
        assert_eq!(fabric_masters(false), &[2, 3, 4, 6, 8]);
        assert_eq!(fabric_masters(true), &[2, 4]);
        assert_eq!(FABRIC_ARBITRATIONS.len(), 3);
        assert_eq!(FABRIC_SEGMENTS, [1, 2]);
    }

    #[test]
    fn share_math() {
        let cell = FabricCell {
            masters: 4,
            segments: 1,
            arbitration: ArbitrationPolicy::RoundRobin,
            grants: vec![25, 25, 25, 25],
            result: dummy_result(),
            kernels_agree: true,
        };
        assert!(cell.max_share_error() < 1e-9);
        assert_eq!(cell.shares(), vec![0.25; 4]);
        let skewed = FabricCell {
            grants: vec![97, 1, 1, 1],
            ..cell
        };
        assert!(skewed.max_share_error() > 0.7);
        assert!(skewed.shares()[3] < 0.5 / 4.0, "starved tail master");
    }

    fn dummy_result() -> RunResult {
        RunResult {
            outcome: RunOutcome::Completed,
            cycles: hmp_sim::Cycle::new(1000),
            bus: hmp_bus::BusStats::default(),
            cpus: Vec::new(),
            stats: hmp_sim::Stats::new(),
            violations: Vec::new(),
            metrics: None,
            hang: None,
            invariant: None,
            faults_injected: 0,
            timeseries: None,
            profile: None,
        }
    }

    #[test]
    fn one_cell_runs_and_serializes() {
        let cell = run_cell(3, 2, ArbitrationPolicy::Fcfs);
        assert!(cell.kernels_agree, "kernels diverged: {:?}", cell.result);
        assert_eq!(cell.grants.len(), 3);
        assert!(
            cell.result.is_clean_completion(),
            "FCFS fabric should finish: {}",
            cell.result
        );
        let snap = cell
            .result
            .timeseries
            .as_ref()
            .expect("fabric cells run with telemetry armed");
        assert!(snap.samples() > 0);
        assert!(cell.busy_windows() > 0, "no window cleared the grant floor");
        assert!(
            cell.max_windowed_share_error() < 0.5,
            "windowed share error {:.4} is not a share deviation",
            cell.max_windowed_share_error()
        );
        let json = fabric_json(true, std::slice::from_ref(&cell));
        validate_json(&json).expect("fabric JSON must parse");
        assert!(json.starts_with(r#"{"schema_version":1,"#), "{json}");
        assert!(json.contains(r#""arbitration":"fcfs""#), "{json}");
        assert!(json.contains(r#""kernels_agree":true"#), "{json}");
        assert!(json.contains(r#""acquire_wait":{"#), "{json}");
        assert!(json.contains(r#""windows":{"window_cycles":"#), "{json}");
        assert!(json.contains(r#""max_windowed_share_error":"#), "{json}");
    }

    #[test]
    fn arbitration_keys_are_stable() {
        assert_eq!(
            arbitration_key(ArbitrationPolicy::RoundRobin),
            "round_robin"
        );
        assert_eq!(
            arbitration_key(ArbitrationPolicy::FixedPriority),
            "fixed_priority"
        );
        assert_eq!(arbitration_key(ArbitrationPolicy::Fcfs), "fcfs");
    }
}
