//! Chaos-sweep grid: fault classes × platform pairings × strategies.
//!
//! Each grid cell arms one [`FaultKind`] (via a seed-reproducible
//! [`FaultDirective`]) on a WCS run with the recovery policy engaged,
//! executes it under **both** simulation kernels, checks the two
//! [`hmp_platform::RunResult`]s compare equal, and classifies which
//! detector caught the injected damage ([`hmp_platform::chaos::classify`]).
//! Rows aggregate cells per fault class into the detector-coverage matrix
//! that `chaos_sweep` prints and writes to `BENCH_CHAOS.json`.

use crate::sweep::par_map;
use hmp_bus::RecoveryPolicy;
use hmp_cache::ProtocolKind;
use hmp_platform::chaos::{Coverage, Detector};
use hmp_platform::{Kernel, RunOutcome, RunResult, Strategy};
use hmp_sim::FaultKind;
use hmp_workloads::{run, FaultDirective, MicrobenchParams, PlatformPick, RunSpec, Scenario};
use std::fmt::Write as _;

/// Watchdog stall window for chaos runs (bus cycles) — small enough that
/// liveness faults report quickly, large enough that healthy drain waits
/// never trip it.
pub const CHAOS_WATCHDOG_WINDOW: u64 = 15_000;

/// Cycle budget per chaos run. Far above the watchdog window, so a
/// liveness fault always meets the watchdog (or the quarantine path)
/// before the budget.
pub const CHAOS_MAX_CYCLES: u64 = 400_000;

/// The recovery policy every chaos cell arms: a small retry budget, a
/// long escalation backoff (so healthy CAM-drain retry bursts never look
/// like a wedge), and quarantine well past any legitimate retry streak.
pub const CHAOS_RECOVERY: RecoveryPolicy = RecoveryPolicy {
    retry_budget: 6,
    escalation_backoff: 64,
    quarantine_after: 200,
};

/// The platform pairings the sweep covers.
pub fn chaos_platforms() -> [PlatformPick; 4] {
    [
        PlatformPick::PpcArm,
        PlatformPick::I486Ppc,
        PlatformPick::Pf1Dual,
        PlatformPick::Pair(ProtocolKind::Mesi, ProtocolKind::Moesi),
    ]
}

/// The shared-data strategies the sweep covers. The reduced (CI smoke)
/// grid keeps only the paper's proposed approach.
pub fn chaos_strategies(reduced: bool) -> &'static [Strategy] {
    if reduced {
        &[Strategy::Proposed]
    } else {
        &[Strategy::Proposed, Strategy::SoftwareDrain]
    }
}

/// Stable snake_case key for a platform pairing (JSON field value).
pub fn platform_key(platform: PlatformPick) -> &'static str {
    match platform {
        PlatformPick::PpcArm => "ppc_arm",
        PlatformPick::I486Ppc => "i486_ppc",
        PlatformPick::Pf1Dual => "pf1_dual",
        PlatformPick::Pair(..) => "mesi_moesi",
        PlatformPick::Fabric { .. } => "fabric",
    }
}

/// Stable snake_case key for a strategy (JSON field value).
pub fn strategy_key(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::CacheDisabled => "cache_disabled",
        Strategy::SoftwareDrain => "software_drain",
        Strategy::Proposed => "proposed",
    }
}

/// Stable snake_case key for a run outcome (JSON field value).
pub fn outcome_key(outcome: RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Completed => "completed",
        RunOutcome::Stalled => "stalled",
        RunOutcome::CycleLimit => "cycle_limit",
        RunOutcome::InvariantViolation => "invariant_violation",
        RunOutcome::Degraded { .. } => "degraded",
    }
}

/// The WCS workload every chaos cell runs: small enough to finish fast,
/// large enough that faults land mid-traffic.
pub fn chaos_params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 4,
        exec_time: 2,
        outer_iters: 6,
        seed: 7,
        ..Default::default()
    }
}

/// The per-class fault directive: class-appropriate count, window and
/// parameter, seeded per class so the whole sweep is reproducible.
pub fn directive_for(kind: FaultKind) -> FaultDirective {
    let seed = 0xC4A0_5EED ^ ((kind.index() as u64 + 1) * 0x9E37_79B9);
    let mut d = FaultDirective::new(kind, seed, 3);
    d.addr_lines = u64::from(chaos_params().lines_per_iter);
    match kind {
        FaultKind::GrantDrop | FaultKind::GrantDelay => d.param = 40,
        FaultKind::SpuriousRetry => {
            d.count = 4;
            d.param = 3;
        }
        FaultKind::NfiqDelay => {
            d.count = 2;
            d.param = 600;
        }
        FaultKind::NfiqLost | FaultKind::WedgedMaster => d.count = 1,
        FaultKind::CamDesync => d.count = 4,
        FaultKind::SharedCorrupt => {
            d.count = 5;
            d.param = 0; // suppress SHARED: fills Exclusive next to sharers
        }
        FaultKind::LineStateCorrupt => d.count = 5,
    }
    d
}

/// Builds the full [`RunSpec`] for one chaos cell. Invariant checking is
/// armed only under [`Strategy::Proposed`]: the software-drain strategy
/// legitimately holds concurrent writable copies between drains, which
/// the structural checker would (correctly, but unhelpfully) flag.
pub fn chaos_spec(kind: FaultKind, platform: PlatformPick, strategy: Strategy) -> RunSpec {
    chaos_spec_with(directive_for(kind), platform, strategy)
}

/// [`chaos_spec`] with an explicit directive (the bridge cells pin their
/// faults on a specific master).
pub fn chaos_spec_with(
    directive: FaultDirective,
    platform: PlatformPick,
    strategy: Strategy,
) -> RunSpec {
    let mut spec = RunSpec::new(Scenario::Worst, strategy, chaos_params())
        .on(platform)
        .with_faults(directive)
        .with_recovery(CHAOS_RECOVERY)
        .with_watchdog_window(CHAOS_WATCHDOG_WINDOW);
    spec.max_cycles = CHAOS_MAX_CYCLES;
    if strategy == Strategy::Proposed {
        spec = spec.with_invariants();
    }
    spec
}

/// The fabric platform the bridge chaos cells run on: four MESI masters
/// split over two bridged segments, so master [`BRIDGE_TARGET`] sits
/// across the snooping bridge from memory.
pub const BRIDGE_PLATFORM: PlatformPick = PlatformPick::Fabric {
    protocol: ProtocolKind::Mesi,
    masters: 4,
    segments: 2,
};

/// The bridge-endpoint master (on segment 1) the bridge cells aim at.
pub const BRIDGE_TARGET: u32 = 3;

/// The two bridge-endpoint cells appended to every grid: a permanently
/// wedged master behind the bridge (expected to quarantine → Degraded)
/// and a grant blackout longer than the watchdog window (expected to
/// trip the watchdog). Neither may go undetected.
pub fn bridge_directives() -> [FaultDirective; 2] {
    let wedge = directive_for(FaultKind::WedgedMaster).aimed_at(BRIDGE_TARGET);
    let mut blackout = directive_for(FaultKind::GrantDrop).aimed_at(BRIDGE_TARGET);
    blackout.count = 1;
    blackout.param = CHAOS_WATCHDOG_WINDOW + 5_000; // outlives the watchdog window
    [wedge, blackout]
}

/// One finished grid cell.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Injected fault class.
    pub kind: FaultKind,
    /// Platform pairing.
    pub platform: PlatformPick,
    /// Shared-data strategy.
    pub strategy: Strategy,
    /// Which detector caught the damage (or `Undetected`).
    pub detector: Detector,
    /// The run result (from the fast-forward kernel).
    pub result: RunResult,
    /// Whether the step and fast-forward kernels produced byte-identical
    /// results for this cell.
    pub kernels_agree: bool,
}

/// Runs one cell under both kernels and classifies it.
pub fn run_cell(kind: FaultKind, platform: PlatformPick, strategy: Strategy) -> ChaosCell {
    run_cell_with(directive_for(kind), platform, strategy)
}

/// [`run_cell`] with an explicit directive.
pub fn run_cell_with(
    directive: FaultDirective,
    platform: PlatformPick,
    strategy: Strategy,
) -> ChaosCell {
    let spec = chaos_spec_with(directive, platform, strategy);
    let fast = run(&spec.with_kernel(Kernel::FastForward));
    let step = run(&spec.with_kernel(Kernel::Step));
    let kernels_agree = fast == step;
    let detector = hmp_platform::chaos::classify(&fast);
    ChaosCell {
        kind: directive.kind,
        platform,
        strategy,
        detector,
        result: fast,
        kernels_agree,
    }
}

/// One detector-coverage row: a fault class with its aggregated cells.
#[derive(Debug, Clone, Copy)]
pub struct CoverageRow {
    /// The fault class.
    pub kind: FaultKind,
    /// Aggregated detector counts across the class's cells.
    pub coverage: Coverage,
}

/// Runs the whole grid (in parallel — every cell is deterministic and
/// independent) and aggregates the coverage matrix in
/// [`FaultKind::ALL`] order.
pub fn run_grid(reduced: bool, workers: usize) -> (Vec<ChaosCell>, Vec<CoverageRow>) {
    let mut points = Vec::new();
    for kind in FaultKind::ALL {
        for platform in chaos_platforms() {
            for &strategy in chaos_strategies(reduced) {
                points.push((directive_for(kind), platform, strategy));
            }
        }
    }
    // The two bridge-endpoint cells ride on every grid, reduced or not.
    for directive in bridge_directives() {
        points.push((directive, BRIDGE_PLATFORM, Strategy::Proposed));
    }
    let cells = par_map(&points, workers, |&(directive, platform, strategy)| {
        run_cell_with(directive, platform, strategy)
    });
    let mut rows: Vec<CoverageRow> = FaultKind::ALL
        .iter()
        .map(|&kind| CoverageRow {
            kind,
            coverage: Coverage::default(),
        })
        .collect();
    for cell in &cells {
        rows[cell.kind.index()].coverage.absorb(&cell.result);
    }
    (cells, rows)
}

/// Renders the sweep as the `BENCH_CHAOS.json` document.
pub fn chaos_json(reduced: bool, cells: &[ChaosCell], rows: &[CoverageRow]) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        concat!(
            r#""schema_version":{},"bench":"chaos_sweep","reduced":{},"scenario":"Worst","#,
            r#""watchdog_window":{},"max_cycles":{},"cells":["#
        ),
        hmp_sim::export::SCHEMA_VERSION,
        reduced,
        CHAOS_WATCHDOG_WINDOW,
        CHAOS_MAX_CYCLES,
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"fault":"{}","platform":"{}","strategy":"{}","detector":"{}","#,
                r#""outcome":"{}","cycles":{},"faults_injected":{},"kernels_agree":{}}}"#
            ),
            c.kind.key(),
            platform_key(c.platform),
            strategy_key(c.strategy),
            c.detector.key(),
            outcome_key(c.result.outcome),
            c.result.cycles_u64(),
            c.result.faults_injected,
            c.kernels_agree,
        );
    }
    out.push_str(r#"],"coverage":["#);
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cov = row.coverage;
        let _ = write!(
            out,
            concat!(
                r#"{{"fault":"{}","protocol_breaking":{},"liveness_breaking":{},"#,
                r#""runs":{},"injected":{},"invariant_checker":{},"golden_checker":{},"#,
                r#""watchdog":{},"undetected":{},"detected":{}}}"#
            ),
            row.kind.key(),
            row.kind.protocol_breaking(),
            row.kind.liveness_breaking(),
            cov.runs,
            cov.injected,
            cov.invariant,
            cov.golden,
            cov.watchdog,
            cov.undetected,
            cov.detected(),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::export::validate_json;

    #[test]
    fn grid_axes_meet_the_coverage_floor() {
        // ≥ 6 fault classes × ≥ 4 platform pairings, even reduced.
        const { assert!(FaultKind::COUNT >= 6) };
        assert_eq!(chaos_platforms().len(), 4);
        assert_eq!(chaos_strategies(true).len(), 1);
        assert_eq!(chaos_strategies(false).len(), 2);
    }

    #[test]
    fn directives_are_reproducible_and_distinct() {
        for kind in FaultKind::ALL {
            assert_eq!(directive_for(kind), directive_for(kind));
            assert!(directive_for(kind).count >= 1);
        }
        assert_ne!(
            directive_for(FaultKind::GrantDrop).seed,
            directive_for(FaultKind::CamDesync).seed
        );
    }

    #[test]
    fn one_cell_runs_and_serializes() {
        let cell = run_cell(
            FaultKind::SpuriousRetry,
            PlatformPick::PpcArm,
            Strategy::Proposed,
        );
        assert!(cell.kernels_agree, "kernels diverged: {:?}", cell.result);
        assert!(cell.result.faults_injected >= 1);
        let row = CoverageRow {
            kind: cell.kind,
            coverage: {
                let mut c = Coverage::default();
                c.absorb(&cell.result);
                c
            },
        };
        let json = chaos_json(true, std::slice::from_ref(&cell), &[row]);
        validate_json(&json).expect("chaos JSON must parse");
        assert!(json.contains(r#""fault":"spurious_retry""#), "{json}");
        assert!(json.contains(r#""kernels_agree":true"#), "{json}");
    }

    #[test]
    fn bridge_cells_are_detected_never_silent() {
        for directive in bridge_directives() {
            let cell = run_cell_with(directive, BRIDGE_PLATFORM, Strategy::Proposed);
            assert!(
                cell.kernels_agree,
                "{}: kernels diverged: {:?}",
                directive.kind.key(),
                cell.result
            );
            assert_ne!(
                cell.detector,
                Detector::Undetected,
                "{} at the bridge endpoint escaped every detector: {:?}",
                directive.kind.key(),
                cell.result
            );
        }
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(platform_key(PlatformPick::PpcArm), "ppc_arm");
        assert_eq!(
            platform_key(PlatformPick::Pair(ProtocolKind::Mei, ProtocolKind::Msi)),
            "mesi_moesi"
        );
        assert_eq!(platform_key(BRIDGE_PLATFORM), "fabric");
        assert_eq!(strategy_key(Strategy::SoftwareDrain), "software_drain");
        assert_eq!(outcome_key(RunOutcome::Completed), "completed");
        assert_eq!(
            outcome_key(RunOutcome::Degraded {
                quarantined: 1,
                faults_absorbed: 1
            }),
            "degraded"
        );
    }
}
