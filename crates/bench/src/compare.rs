//! Cross-run regression comparison of `BENCH_*.json` documents.
//!
//! The `bench_compare` binary diffs the benchmark JSON a fresh run just
//! produced against a committed baseline (`baselines/` in the repo) and
//! fails on any drift beyond tolerance. The comparison is structural: a
//! deterministic walk over both parsed documents, value by value.
//!
//! Machine-dependent numbers — wall-clock phase timings (`*_ns`),
//! cycles-per-second gauges (`*_cps`, `cycles_per_sec`) and their
//! derived `speedup` — are skipped: they vary run to run on the same
//! commit and would make the gate flaky. Everything else in these
//! documents is deterministic (simulated cycles, grant counts, ratios,
//! shares), so the default tolerance only needs to absorb float
//! formatting, not noise.

use hmp_sim::export::{parse_json, JsonValue, SCHEMA_VERSION};

/// Default relative tolerance for numeric drift. The compared numbers
/// are deterministic, so this mostly guards against benign float
/// re-formatting; pass `--tolerance` to loosen it deliberately.
pub const DEFAULT_TOLERANCE: f64 = 0.0;

/// Keys whose values are machine-dependent and excluded from comparison.
pub const IGNORED_KEYS: [&str; 2] = ["cycles_per_sec", "speedup"];

/// Key suffixes excluded from comparison (wall-clock phase timings and
/// cycles-per-second rates).
pub const IGNORED_KEY_SUFFIXES: [&str; 2] = ["_ns", "_cps"];

/// Whether a JSON object key holds a machine-dependent value that the
/// regression gate must not compare.
pub fn is_ignored_key(key: &str) -> bool {
    IGNORED_KEYS.contains(&key) || IGNORED_KEY_SUFFIXES.iter().any(|s| key.ends_with(s))
}

/// One detected difference, rendered ready to print.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// JSON-path-ish location of the difference (e.g. `cells[3].cycles`).
    pub path: String,
    /// Human-readable description of the difference.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

fn numbers_differ(base: f64, cur: f64, rel_tol: f64) -> Option<f64> {
    let diff = (base - cur).abs();
    if diff == 0.0 {
        return None;
    }
    let scale = base.abs().max(cur.abs());
    // Absolute epsilon absorbs float-formatting wobble around zero.
    if diff <= 1e-9 + rel_tol * scale {
        return None;
    }
    Some(if scale == 0.0 { 0.0 } else { diff / scale })
}

fn walk(path: &str, base: &JsonValue, cur: &JsonValue, rel_tol: f64, out: &mut Vec<Finding>) {
    match (base, cur) {
        (JsonValue::Obj(b), JsonValue::Obj(c)) => {
            for (key, bv) in b {
                if is_ignored_key(key) {
                    continue;
                }
                let sub = format!("{path}.{key}");
                match cur.get(key) {
                    Some(cv) => walk(&sub, bv, cv, rel_tol, out),
                    None => out.push(Finding {
                        path: sub,
                        detail: "present in baseline, missing in current".into(),
                    }),
                }
            }
            for (key, _) in c {
                if !is_ignored_key(key) && base.get(key).is_none() {
                    out.push(Finding {
                        path: format!("{path}.{key}"),
                        detail: "new key not in baseline".into(),
                    });
                }
            }
        }
        (JsonValue::Arr(b), JsonValue::Arr(c)) => {
            if b.len() != c.len() {
                out.push(Finding {
                    path: path.to_string(),
                    detail: format!("array length {} -> {}", b.len(), c.len()),
                });
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                walk(&format!("{path}[{i}]"), bv, cv, rel_tol, out);
            }
        }
        (JsonValue::Num(b), JsonValue::Num(c)) => {
            if let Some(rel) = numbers_differ(*b, *c, rel_tol) {
                out.push(Finding {
                    path: path.to_string(),
                    detail: format!(
                        "{b} -> {c} ({:+.2}% vs tolerance {:.2}%)",
                        100.0 * rel,
                        100.0 * rel_tol
                    ),
                });
            }
        }
        (JsonValue::Str(b), JsonValue::Str(c)) => {
            if b != c {
                out.push(Finding {
                    path: path.to_string(),
                    detail: format!("{b:?} -> {c:?}"),
                });
            }
        }
        (JsonValue::Bool(b), JsonValue::Bool(c)) => {
            if b != c {
                out.push(Finding {
                    path: path.to_string(),
                    detail: format!("{b} -> {c}"),
                });
            }
        }
        (JsonValue::Null, JsonValue::Null) => {}
        _ => out.push(Finding {
            path: path.to_string(),
            detail: format!("type changed: {} -> {}", base.kind(), cur.kind()),
        }),
    }
}

/// Parses and compares one baseline/current document pair.
///
/// Both documents must parse, carry a top-level `schema_version`, and
/// agree on it — an unversioned or version-skewed document is an error,
/// not a finding, because the shapes cannot be compared meaningfully.
/// Returns the (possibly empty) list of differences beyond `rel_tol`.
pub fn compare_docs(baseline: &str, current: &str, rel_tol: f64) -> Result<Vec<Finding>, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline does not parse: {e}"))?;
    let cur = parse_json(current).map_err(|e| format!("current does not parse: {e}"))?;
    let version = |doc: &JsonValue, which: &str| -> Result<f64, String> {
        doc.get("schema_version")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{which} document has no schema_version"))
    };
    let bv = version(&base, "baseline")?;
    let cv = version(&cur, "current")?;
    if bv != cv {
        return Err(format!(
            "schema_version skew: baseline {bv} vs current {cv}"
        ));
    }
    if cv != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {cv} does not match this binary's {SCHEMA_VERSION}"
        ));
    }
    let mut findings = Vec::new();
    walk("$", &base, &cur, rel_tol, &mut findings);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_docs_have_no_findings() {
        let doc = r#"{"schema_version":1,"cycles":100,"rows":[{"a":1},{"a":2}]}"#;
        assert_eq!(compare_docs(doc, doc, 0.0).unwrap(), Vec::new());
    }

    #[test]
    fn numeric_drift_is_caught_and_tolerance_absorbs_it() {
        let base = r#"{"schema_version":1,"cycles":100}"#;
        let cur = r#"{"schema_version":1,"cycles":103}"#;
        let findings = compare_docs(base, cur, 0.0).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "$.cycles");
        assert!(findings[0].detail.contains("100 -> 103"), "{}", findings[0]);
        assert!(compare_docs(base, cur, 0.05).unwrap().is_empty());
    }

    #[test]
    fn machine_dependent_keys_are_ignored() {
        let base = r#"{"schema_version":1,"step_cps":1.0,"wall_ns":5,"speedup":2.0,"cycles_per_sec":9.0,"cycles":7}"#;
        let cur = r#"{"schema_version":1,"step_cps":99.0,"wall_ns":50,"speedup":1.0,"cycles_per_sec":1.0,"cycles":7}"#;
        assert!(compare_docs(base, cur, 0.0).unwrap().is_empty());
        assert!(is_ignored_key("plan_ns"));
        assert!(is_ignored_key("fast_cps"));
        assert!(!is_ignored_key("cycles"));
        assert!(!is_ignored_key("utilization"));
    }

    #[test]
    fn shape_changes_are_findings() {
        let base = r#"{"schema_version":1,"rows":[1,2],"name":"a","flag":true}"#;
        let cur = r#"{"schema_version":1,"rows":[1,2,3],"name":"b","flag":false,"extra":0}"#;
        let findings = compare_docs(base, cur, 0.0).unwrap();
        let paths: Vec<&str> = findings.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"$.rows"), "{paths:?}");
        assert!(paths.contains(&"$.name"), "{paths:?}");
        assert!(paths.contains(&"$.flag"), "{paths:?}");
        assert!(paths.contains(&"$.extra"), "{paths:?}");
    }

    #[test]
    fn unversioned_documents_are_rejected() {
        let ok = r#"{"schema_version":1}"#;
        let bad = r#"{"cycles":1}"#;
        assert!(compare_docs(bad, ok, 0.0).is_err());
        assert!(compare_docs(ok, bad, 0.0).is_err());
        let skew = r#"{"schema_version":2}"#;
        assert!(compare_docs(ok, skew, 0.0).unwrap_err().contains("skew"));
        assert!(compare_docs("{", ok, 0.0).is_err());
    }
}
