//! Wall-clock micro-timings over the paper's workloads.
//!
//! One group per figure: `fig5_wcs`, `fig6_bcs`, `fig7_tcs` time the
//! simulator running each strategy's workload (the printed figure
//! binaries derive their ratios from exactly these runs);
//! `fig8_miss_penalty` times the penalty sweep; `protocol_pairs` covers
//! every §2 reduction pairing.
//!
//! This is a self-contained `harness = false` bench (the `criterion`
//! crate is unavailable in the offline build environment): each case is
//! warmed up once, then timed over a fixed number of iterations with
//! `std::time::Instant`, reporting the per-iteration mean.

use hmp_cache::ProtocolKind;
use hmp_platform::Strategy;
use hmp_workloads::{run, MicrobenchParams, PlatformPick, RunSpec, Scenario};
use std::hint::black_box;
use std::time::Instant;

const ITERS: u32 = 10;

fn params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 8,
        exec_time: 1,
        outer_iters: 4,
        seed: 1,
        ..Default::default()
    }
}

fn time_case(group: &str, case: &str, spec: &RunSpec) {
    // Warm-up run (first-touch allocations, page faults).
    black_box(run(black_box(spec)).cycles_u64());
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(run(black_box(spec)).cycles_u64());
    }
    let total = start.elapsed();
    println!(
        "{group}/{case:<24} {:>10.1} µs/iter ({ITERS} iters)",
        total.as_secs_f64() * 1e6 / f64::from(ITERS)
    );
}

fn bench_scenario(scenario: Scenario, group: &str) {
    for strategy in Strategy::ALL {
        let spec = RunSpec::new(scenario, strategy, params());
        time_case(group, &strategy.to_string(), &spec);
    }
}

fn main() {
    bench_scenario(Scenario::Worst, "fig5_wcs");
    bench_scenario(Scenario::Best, "fig6_bcs");
    bench_scenario(Scenario::Typical, "fig7_tcs");

    for penalty in [13u64, 24, 48, 96] {
        let spec =
            RunSpec::new(Scenario::Worst, Strategy::Proposed, params()).with_burst_penalty(penalty);
        time_case("fig8_miss_penalty", &penalty.to_string(), &spec);
    }

    use ProtocolKind::*;
    for (a, b) in [(Mei, Mesi), (Msi, Mesi), (Mesi, Moesi), (Moesi, Moesi)] {
        let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
            .on(PlatformPick::Pair(a, b));
        time_case("protocol_pairs", &format!("{a}+{b}"), &spec);
    }
}
