//! Criterion benches over the paper's workloads.
//!
//! One group per figure: `fig5_wcs`, `fig6_bcs`, `fig7_tcs` time the
//! simulator running each strategy's workload (the printed figure
//! binaries derive their ratios from exactly these runs);
//! `fig8_miss_penalty` times the penalty sweep; `protocol_pairs` covers
//! every §2 reduction pairing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmp_cache::ProtocolKind;
use hmp_platform::Strategy;
use hmp_workloads::{run, MicrobenchParams, PlatformPick, RunSpec, Scenario};
use std::hint::black_box;

fn params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 8,
        exec_time: 1,
        outer_iters: 4,
        seed: 1,
        ..Default::default()
    }
}

fn bench_scenario(c: &mut Criterion, scenario: Scenario, group_name: &str) {
    let mut group = c.benchmark_group(group_name);
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                let spec = RunSpec::new(scenario, strategy, params());
                b.iter(|| black_box(run(black_box(&spec))).cycles_u64());
            },
        );
    }
    group.finish();
}

fn fig5_wcs(c: &mut Criterion) {
    bench_scenario(c, Scenario::Worst, "fig5_wcs");
}

fn fig6_bcs(c: &mut Criterion) {
    bench_scenario(c, Scenario::Best, "fig6_bcs");
}

fn fig7_tcs(c: &mut Criterion) {
    bench_scenario(c, Scenario::Typical, "fig7_tcs");
}

fn fig8_miss_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_miss_penalty");
    for penalty in [13u64, 24, 48, 96] {
        group.bench_with_input(
            BenchmarkId::from_parameter(penalty),
            &penalty,
            |b, &penalty| {
                let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
                    .with_burst_penalty(penalty);
                b.iter(|| black_box(run(black_box(&spec))).cycles_u64());
            },
        );
    }
    group.finish();
}

fn protocol_pairs(c: &mut Criterion) {
    use ProtocolKind::*;
    let mut group = c.benchmark_group("protocol_pairs");
    for (a, b_) in [(Mei, Mesi), (Msi, Mesi), (Mesi, Moesi), (Moesi, Moesi)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{a}+{b_}")),
            &(a, b_),
            |bench, &(a, b_)| {
                let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
                    .on(PlatformPick::Pair(a, b_));
                bench.iter(|| black_box(run(black_box(&spec))).cycles_u64());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig5_wcs, fig6_bcs, fig7_tcs, fig8_miss_penalty, protocol_pairs
}
criterion_main!(figures);
