//! Deadlock-space probe: Figure 4 under nFIQ-delay faults.
//!
//! The paper's Figure 4 shows the hardware deadlock of cacheable lock
//! variables on the PF2 platform: a master retrying a snooped transaction
//! and the processor that must service the snoop interrupt block each
//! other forever. The mitigations are uncached lock variables (the turn
//! and Bakery locks of §4) or the hardware lock register.
//!
//! This probe widens Figure 4 into a small deadlock *space*: each lock
//! configuration runs the WCS workload with the ARM's nFIQ delivery
//! delayed by an injected fault (0 / 2 000 / 20 000 bus cycles). The
//! cacheable-lock configuration deadlocks at every delay; both
//! mitigations absorb even the 20 000-cycle delay and complete cleanly —
//! delayed interrupt service stretches the drain window but never closes
//! the cycle that the cacheable lock closes.

use hmp_cpu::LockKind;
use hmp_platform::{presets, RunOutcome, RunResult, Strategy};
use hmp_sim::{FaultKind, FaultPlan, FaultSpec};
use hmp_workloads::{build_programs, MicrobenchParams, Scenario};

/// nFIQ-delay fault magnitudes the probe sweeps (bus cycles; 0 = no
/// fault).
const DELAYS: [u64; 3] = [0, 2_000, 20_000];

fn probe(lock_kind: LockKind, cacheable_locks: bool, nfiq_delay: u64) -> RunResult {
    let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, lock_kind, cacheable_locks);
    spec.watchdog_window = 10_000;
    if nfiq_delay > 0 {
        // Mask the ARM's (node 1) interrupt line mid-run.
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            150,
            FaultKind::NfiqDelay,
            1,
            nfiq_delay,
        )]));
    }
    let params = MicrobenchParams {
        lines_per_iter: 4,
        exec_time: 2,
        outer_iters: 4,
        seed: 7,
        ..Default::default()
    };
    let programs = build_programs(Scenario::Worst, Strategy::Proposed, &params, &lay);
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, programs);
    sys.run(400_000)
}

#[test]
fn cacheable_lock_deadlocks_at_every_nfiq_delay() {
    for delay in DELAYS {
        let r = probe(LockKind::Turn, true, delay);
        assert_eq!(
            r.outcome,
            RunOutcome::Stalled,
            "cacheable turn lock, nfiq delay {delay}: {r}"
        );
        assert!(r.hang.is_some(), "stalls carry a hang report");
    }
}

#[test]
fn uncached_bakery_lock_survives_every_nfiq_delay() {
    for delay in DELAYS {
        let r = probe(LockKind::Bakery, false, delay);
        assert!(
            r.is_clean_completion(),
            "bakery lock, nfiq delay {delay}: {r}"
        );
        assert_eq!(r.faults_injected, u64::from(delay > 0));
    }
}

#[test]
fn hardware_lock_register_survives_every_nfiq_delay() {
    for delay in DELAYS {
        let r = probe(LockKind::HardwareRegister, false, delay);
        assert!(
            r.is_clean_completion(),
            "hardware lock, nfiq delay {delay}: {r}"
        );
        assert_eq!(r.faults_injected, u64::from(delay > 0));
    }
}

#[test]
fn delayed_interrupts_stretch_but_do_not_break_the_drain_window() {
    // The mitigation's cost is visible: a delayed nFIQ lengthens the run
    // (the PowerPC retries on the TAG CAM until the ARM finally drains),
    // but the CAM retry path keeps coherence intact throughout.
    let clean = probe(LockKind::Bakery, false, 0);
    let delayed = probe(LockKind::Bakery, false, 20_000);
    assert!(
        delayed.cycles_u64() > clean.cycles_u64(),
        "delay must cost cycles: {} vs {}",
        delayed.cycles_u64(),
        clean.cycles_u64()
    );
    assert!(delayed.stats.get("bus.retry.cam") >= clean.stats.get("bus.retry.cam"));
}
