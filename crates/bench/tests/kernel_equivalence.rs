//! Step vs fast-forward kernel equivalence.
//!
//! The fast-forward kernel may only skip cycles on which provably nothing
//! happens; every grant, snoop, retry, countdown expiry, interrupt
//! delivery and watchdog poll must land on exactly the cycle the
//! per-cycle step kernel would produce. These tests pin that property at
//! the strongest available granularity: the **entire** [`RunResult`] —
//! outcome, cycle count, bus stats, per-CPU counters, platform counters,
//! metrics histograms and span-derived reports — must compare equal
//! between the two kernels, across every preset scenario, strategy and
//! platform pairing, including the pathological runs (the Figure 4
//! hardware deadlock and the seeded Table 2 invariant violation).

use hmp_bus::ArbitrationPolicy;
use hmp_cache::ProtocolKind;
use hmp_cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp_platform::{
    layout, presets, CpuSpec, Kernel, PlatformSpec, RunOutcome, RunResult, Strategy, System,
    Topology, TopologyMaster, WrapperMode,
};
use hmp_workloads::{
    build_programs_for, run, scenario_lock_kind, MicrobenchParams, PlatformPick, RunSpec, Scenario,
};

fn params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 8,
        exec_time: 2,
        outer_iters: 3,
        seed: 7,
        ..Default::default()
    }
}

/// Runs `spec` under both kernels and asserts the full results agree,
/// returning the (shared) result for additional outcome assertions.
fn kernels_agree(spec: RunSpec, label: &str) -> RunResult {
    let step = run(&spec.with_kernel(Kernel::Step));
    let fast = run(&spec.with_kernel(Kernel::FastForward));
    assert_eq!(step, fast, "kernel divergence on {label}");
    step
}

#[test]
fn every_preset_and_strategy_agrees() {
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        for strategy in Strategy::ALL {
            // Metrics + invariants on, so the comparison covers the
            // MetricsSnapshot histograms and the invariant observer too.
            let spec = RunSpec::new(scenario, strategy, params())
                .with_spans(256)
                .with_invariants();
            let r = kernels_agree(spec, &format!("{scenario:?}/{strategy}"));
            assert!(r.is_clean_completion(), "{scenario:?}/{strategy}: {r}");
            assert!(r.metrics.is_some(), "metrics snapshot compared");
        }
    }
}

#[test]
fn every_platform_class_agrees() {
    let picks = [
        ("ppc_arm", PlatformPick::PpcArm),
        ("i486_ppc", PlatformPick::I486Ppc),
        ("pf1_dual", PlatformPick::Pf1Dual),
        (
            "mesi_moesi",
            PlatformPick::Pair(ProtocolKind::Mesi, ProtocolKind::Moesi),
        ),
    ];
    for (name, pick) in picks {
        let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
            .on(pick)
            .with_spans(256);
        let r = kernels_agree(spec, name);
        assert!(r.is_clean_completion(), "{name}: {r}");
    }
}

#[test]
fn five_protocol_pairings_agree() {
    use ProtocolKind::{Mei, Mesi, Moesi, Msi};
    for (a, b) in [
        (Mei, Mesi),
        (Msi, Mesi),
        (Msi, Moesi),
        (Mesi, Moesi),
        (Moesi, Moesi),
    ] {
        let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
            .on(PlatformPick::Pair(a, b))
            .with_spans(256)
            .with_invariants();
        let r = kernels_agree(spec, &format!("{a}+{b}"));
        assert!(r.is_clean_completion(), "{a}+{b}: {r}");
    }
}

/// Runs a hand-built topology's WCS workload under one kernel and
/// returns the full result plus the per-master grant counts.
fn run_topology(
    topo: &Topology,
    arbitration: ArbitrationPolicy,
    kernel: Kernel,
) -> (RunResult, Vec<u64>) {
    let lock_kind = scenario_lock_kind(Scenario::Worst);
    let (mut pspec, lay) = topo.spec(Strategy::Proposed, lock_kind, false);
    pspec.arbitration = arbitration;
    pspec.span_capacity = 256;
    pspec.check_invariants = true;
    // Windowed telemetry takes part in the compared result, so the
    // fast-forward kernel's bulk warp recording is pinned to the step
    // kernel's per-cycle recording, window for window.
    pspec.timeseries = Some(hmp_sim::TimeSeriesSpec {
        window: 256,
        capacity: 8,
    });
    let programs = build_programs_for(
        Scenario::Worst,
        Strategy::Proposed,
        &params(),
        &lay,
        pspec.cpus.len(),
    );
    let mut sys = presets::instantiate(&pspec, Strategy::Proposed, programs);
    sys.set_kernel(kernel);
    let result = sys.run(2_000_000);
    (result, sys.master_grants().to_vec())
}

/// Both kernels over a topology: full results and grant counts must
/// match; returns the shared result.
fn topology_kernels_agree(
    topo: &Topology,
    arbitration: ArbitrationPolicy,
    label: &str,
) -> RunResult {
    let (step, step_grants) = run_topology(topo, arbitration, Kernel::Step);
    let (fast, fast_grants) = run_topology(topo, arbitration, Kernel::FastForward);
    assert_eq!(step, fast, "kernel divergence on {label}");
    assert_eq!(step_grants, fast_grants, "grant divergence on {label}");
    step
}

#[test]
fn three_master_mixed_clock_topology_agrees() {
    // Three coherent masters with different protocols *and* different
    // core:bus clock ratios on a flat bus — the multi-rate event horizon
    // must line up exactly between kernels.
    let mut topo = Topology::single_segment(vec![
        CpuSpec::generic("fast-mesi", ProtocolKind::Mesi),
        CpuSpec::generic("bus-moesi", ProtocolKind::Moesi),
        CpuSpec::generic("turbo-msi", ProtocolKind::Msi),
    ]);
    topo.masters[0].cpu.clock_mult = 2;
    topo.masters[2].cpu.clock_mult = 3;
    let r = topology_kernels_agree(&topo, ArbitrationPolicy::RoundRobin, "3-master mixed-clock");
    assert!(r.is_clean_completion(), "{r}");
    assert!(r.metrics.is_some(), "metrics snapshot compared");
}

#[test]
fn four_master_bridged_fcfs_topology_agrees() {
    // Four masters over two bridged segments under FCFS arbitration, with
    // mixed protocols and clock ratios: bridge data-phase penalties and
    // request timestamps are both kernel-neutral.
    let mut topo = Topology {
        masters: vec![
            TopologyMaster::new(CpuSpec::generic("m0-moesi", ProtocolKind::Moesi)),
            TopologyMaster::new(CpuSpec::generic("m1-mesi", ProtocolKind::Mesi)),
            TopologyMaster::new(CpuSpec::generic("m2-mesi", ProtocolKind::Mesi)).on_segment(1),
            TopologyMaster::new(CpuSpec::generic("m3-msi", ProtocolKind::Msi)).on_segment(1),
        ],
        segments: 2,
        bridge_latency: Topology::DEFAULT_BRIDGE_LATENCY,
    };
    topo.masters[1].cpu.clock_mult = 2;
    topo.masters[3].cpu.clock_mult = 3;
    let r = topology_kernels_agree(&topo, ArbitrationPolicy::Fcfs, "4-master bridged FCFS");
    assert!(r.is_clean_completion(), "{r}");
}

#[test]
fn n_master_fabrics_agree_across_the_planner_size_threshold() {
    // The event planner answers "earliest" with a dense linear scan up to
    // 8 nodes and a lazy binary heap beyond that. Sweeping the master
    // count across that threshold — 6 (linear), 9 (just over), 12 (deep
    // in the heap path) — pins the property that equivalence is
    // insensitive to which query structure served the run. Grant counts
    // and the windowed telemetry series are compared alongside the full
    // result.
    for (masters, segments, arbitration) in [
        (6, 2, ArbitrationPolicy::RoundRobin),
        (9, 3, ArbitrationPolicy::Fcfs),
        (12, 2, ArbitrationPolicy::Fcfs),
    ] {
        let topo = Topology::uniform(ProtocolKind::Mesi, masters, segments);
        let label = format!("{masters}-master/{segments}-segment fabric");
        let r = topology_kernels_agree(&topo, arbitration, &label);
        assert!(r.is_clean_completion(), "{label}: {r}");
        let ts = r.timeseries.as_ref().expect("telemetry registry armed");
        assert!(ts.samples() > 1, "{label}: run spans several windows");
        assert_eq!(
            ts.total(&ts.busy),
            r.bus.grants + r.bus.data_cycles,
            "{label}: busy series reconciles with bus stats"
        );
    }
}

/// Runs a prepared spec under one kernel, returning the full result plus
/// the per-master grant counts (which [`RunResult`] does not carry).
fn run_with_grants(spec: &RunSpec, kernel: Kernel) -> (RunResult, Vec<u64>) {
    let mut sys = hmp_workloads::prepare(&spec.with_kernel(kernel));
    let result = sys.run(spec.max_cycles);
    (result, sys.master_grants().to_vec())
}

#[test]
fn protocol_breaking_chaos_on_a_bridged_fabric_agrees() {
    // The three protocol-breaking fault classes — a desynchronized TAG
    // CAM, a suppressed SHARED response and a corrupted line state — all
    // mutate coherence metadata mid-run. On a bridged 4-master fabric
    // with telemetry armed, the injected runs must stay byte-identical
    // between kernels: same grants per master, same windowed series, same
    // (usually incoherent) outcome at the same cycle.
    use hmp_sim::FaultKind;
    let fabric = PlatformPick::Fabric {
        protocol: ProtocolKind::Mesi,
        masters: 4,
        segments: 2,
    };
    for kind in [
        FaultKind::CamDesync,
        FaultKind::SharedCorrupt,
        FaultKind::LineStateCorrupt,
    ] {
        assert!(kind.protocol_breaking(), "{kind} must break the protocol");
        let spec = hmp_bench::chaos::chaos_spec(kind, fabric, Strategy::Proposed)
            .with_spans(256)
            .with_timeseries(hmp_sim::TimeSeriesSpec {
                window: 256,
                capacity: 8,
            });
        let (step, step_grants) = run_with_grants(&spec, Kernel::Step);
        let (fast, fast_grants) = run_with_grants(&spec, Kernel::FastForward);
        assert_eq!(step, fast, "kernel divergence on {kind} fabric chaos");
        assert_eq!(step_grants, fast_grants, "grant divergence on {kind}");
        assert!(step.faults_injected >= 1, "{kind}: no fault fired");
        let ts = step.timeseries.as_ref().expect("telemetry registry armed");
        assert_eq!(
            Some(ts),
            fast.timeseries.as_ref(),
            "windowed series must be kernel-neutral under {kind}"
        );
    }
}

#[test]
fn runner_reuse_preserves_equivalence_on_a_fabric() {
    // The reset-don't-drop Runner feeds the sweeps; a reused platform
    // must produce the same kernels-agree results as fresh construction,
    // including across a kernel flip on the same reused machine.
    let fabric = PlatformPick::Fabric {
        protocol: ProtocolKind::Mesi,
        masters: 4,
        segments: 2,
    };
    let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
        .on(fabric)
        .with_spans(256);
    let mut runner = hmp_workloads::Runner::new();
    let step_fresh = run(&spec.with_kernel(Kernel::Step));
    let step_reused = runner.run(&spec.with_kernel(Kernel::Step));
    let fast_reused = runner.run(&spec.with_kernel(Kernel::FastForward));
    assert_eq!(step_fresh, step_reused, "reuse changed the step result");
    assert_eq!(
        step_reused, fast_reused,
        "kernel divergence on the reused fabric"
    );
    assert!(
        runner.reuses() >= 1,
        "the second run must have reset, not rebuilt"
    );
}

#[test]
fn figure4_deadlock_stalls_at_the_same_cycle() {
    // Cacheable lock variables on the PF2 platform reproduce the paper's
    // Figure 4 hardware deadlock; the watchdog must trip at the identical
    // cycle under both kernels, with identical hang reports.
    let mut spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params()).with_spans(256);
    spec.cacheable_locks = true;
    spec.max_cycles = 400_000;
    let r = kernels_agree(spec, "figure-4 deadlock");
    assert_eq!(
        r.outcome,
        RunOutcome::Stalled,
        "cacheable locks must reproduce the hardware deadlock: {r}"
    );
    let hang = r.hang.expect("stalled runs carry a hang report");
    assert!(
        !hang.open_spans.is_empty(),
        "the wedged transactions are visible in the hang report"
    );
}

#[test]
fn seeded_table2_invariant_violation_agrees() {
    // Transparent wrappers on a MEI+MESI pairing break coherence (the
    // paper's Table 2 stale read); with live invariant checking the run
    // dies fast — at the same cycle, with the same latched violation,
    // under both kernels.
    let build = |kernel: Kernel| {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let mut spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        spec.wrapper_mode = WrapperMode::Transparent;
        spec.check_invariants = true;
        spec.span_capacity = 64;
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        sys.set_kernel(kernel);
        sys
    };
    let step = build(Kernel::Step).run(10_000);
    let fast = build(Kernel::FastForward).run(10_000);
    assert_eq!(step, fast, "kernel divergence on the Table 2 run");
    assert_eq!(step.outcome, RunOutcome::InvariantViolation, "{step}");
    assert!(step.invariant.is_some());
}

#[test]
fn faulted_runs_agree_for_every_fault_class() {
    // Faults are kernel events, not wall-cycle side effects: a fault plan
    // caps the fast-forward horizon at every fire cycle, so an injected
    // run must stay byte-identical between kernels for every class —
    // including the ones that end degraded, stalled or incoherent.
    use hmp_sim::FaultKind;
    for kind in FaultKind::ALL {
        let spec = hmp_bench::chaos::chaos_spec(kind, PlatformPick::PpcArm, Strategy::Proposed);
        let r = kernels_agree(spec, kind.key());
        assert!(r.faults_injected >= 1, "{}: no fault fired", kind.key());
    }
}

#[test]
fn degraded_recovery_run_agrees_with_metrics_armed() {
    // A wedged master under the recovery policy: quarantine, watchdog
    // rebaseline and the Degraded outcome must land on identical cycles,
    // and the span/histogram snapshots must compare equal too.
    use hmp_sim::FaultKind;
    let spec = hmp_bench::chaos::chaos_spec(
        FaultKind::WedgedMaster,
        PlatformPick::PpcArm,
        Strategy::Proposed,
    )
    .with_spans(256);
    let r = kernels_agree(spec, "wedged master recovery");
    assert!(
        matches!(r.outcome, RunOutcome::Degraded { quarantined, .. } if quarantined >= 1),
        "{r}"
    );
    assert!(!r.is_clean_completion());
    assert!(r.metrics.is_some(), "metrics snapshot compared");
}

#[test]
fn fault_free_chaos_spec_matches_plain_spec() {
    // Arming a recovery policy whose escalation stages never engage must
    // not perturb a healthy run: zero behavioral tax until a fault
    // actually pushes a master over a threshold.
    let plain = RunSpec::new(Scenario::Worst, Strategy::Proposed, params());
    let armed = plain.with_recovery(hmp_bus::RecoveryPolicy {
        retry_budget: 1_000_000,
        escalation_backoff: 64,
        quarantine_after: 1_000_000,
    });
    let a = kernels_agree(plain, "plain WCS");
    let b = kernels_agree(armed, "recovery-armed WCS");
    assert_eq!(a, b, "an unescalated recovery policy must be free");
}

#[test]
fn telemetry_armed_runs_agree_and_the_mix_is_excluded() {
    // The deterministic windowed series take part in result equality;
    // the kernel self-profile (wall times and the warp/cpu-only/full
    // mix) is kernel-dependent by construction and must not.
    let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params())
        .with_spans(256)
        .with_timeseries(hmp_sim::TimeSeriesSpec {
            window: 256,
            capacity: 8,
        })
        .with_profile();
    let step = run(&spec.with_kernel(Kernel::Step));
    let fast = run(&spec.with_kernel(Kernel::FastForward));
    assert_eq!(step, fast, "telemetry-armed kernel divergence");

    let s = step.timeseries.as_ref().expect("registry armed");
    let f = fast.timeseries.as_ref().expect("registry armed");
    assert_eq!(s, f, "windowed series must be kernel-neutral");
    assert!(s.samples() > 1, "the run spans several windows");
    assert_eq!(
        s.total(&s.busy),
        step.bus.grants + step.bus.data_cycles,
        "busy series reconciles with bus stats"
    );

    let sp = step.profile.as_ref().expect("profiling armed");
    let fp = fast.profile.as_ref().expect("profiling armed");
    assert_eq!(sp.kernel, Kernel::Step);
    assert_eq!(fp.kernel, Kernel::FastForward);
    assert!(fp.warped_cycles > 0, "WCS has warpable gaps: {fp:?}");

    // The mixes differ by construction — which is exactly why they live
    // outside the compared snapshot.
    let smix = sp.mix.as_ref().expect("mix rides with the registry");
    let fmix = fp.mix.as_ref().expect("mix rides with the registry");
    let total = |xs: &[u64]| xs.iter().sum::<u64>();
    assert_eq!(total(&smix.warped), 0, "the step kernel never warps");
    assert_eq!(total(&smix.full), step.cycles_u64());
    assert_eq!(total(&fmix.warped), fp.warped_cycles);
    assert_eq!(
        total(&fmix.warped) + total(&fmix.cpu_only) + total(&fmix.full),
        fast.cycles_u64(),
        "every advanced cycle lands in exactly one mix bucket"
    );
}

#[test]
fn cycle_limit_runs_agree() {
    // A budget that expires mid-flight: the fast-forward kernel must not
    // warp past the limit, and the truncated results must still match.
    let mut spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, params()).with_spans(64);
    spec.max_cycles = 1_000;
    let r = kernels_agree(spec, "cycle-limit truncation");
    assert_eq!(r.outcome, RunOutcome::CycleLimit);
    assert_eq!(r.cycles_u64(), 1_000);
}
