//! Long-haul soak for the windowed telemetry registry.
//!
//! A 10M+-cycle fabric run with the full registry armed must stay
//! O(capacity) in memory: the ring never exceeds its configured sample
//! count because decimation-by-merging halves resolution instead of
//! growing storage, and the per-window totals stay exact through every
//! merge. The workload is deliberately warp-friendly — four masters
//! ping-pong one shared line across the bridge, each write followed by
//! a long compute delay — so the fast-forward kernel skips the dead
//! windows and the soak finishes in seconds even in debug builds while
//! still covering thousands of window rollovers and decimation merges.

use hmp_cache::ProtocolKind;
use hmp_cpu::{LockKind, ProgramBuilder};
use hmp_platform::{Strategy, System, Topology};
use hmp_sim::TimeSeriesSpec;

#[test]
fn ten_million_cycle_fabric_soak_stays_bounded() {
    let ts = TimeSeriesSpec {
        window: 4096,
        capacity: 32,
    };
    let topo = Topology::uniform(ProtocolKind::Mesi, 4, 2);
    let (mut spec, lay) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
    spec.arbitration = hmp_bus::ArbitrationPolicy::Fcfs;
    spec.timeseries = Some(ts);
    spec.profile = true;

    // Each master writes the same shared line, then computes for 5 000
    // cycles: ownership ping-pongs across the bridge while the delays
    // leave long event-free windows for the kernel to warp.
    let a = lay.shared_base;
    let task = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_200 {
            b = b.write(a, v + i).delay(5_000);
        }
        b.build()
    };
    let mut sys = System::new(&spec, (0..4).map(|i| task(i * 10_000)).collect::<Vec<_>>());
    sys.set_kernel(hmp_sim::Kernel::FastForward);

    let r = sys.run(40_000_000);
    assert!(r.is_clean_completion(), "{r}");
    assert!(
        r.cycles_u64() >= 10_000_000,
        "soak must cover 10M+ cycles, got {}",
        r.cycles_u64()
    );

    let snap = r.timeseries.as_ref().expect("registry armed");
    // O(capacity): the ring never outgrows its configured sample count,
    // no matter how long the run.
    assert!(
        snap.samples() <= ts.capacity,
        "{} samples exceed the capacity of {}",
        snap.samples(),
        ts.capacity
    );
    assert!(
        snap.scale >= 6,
        "a 10M+-cycle run over 4096-cycle base windows must decimate \
         many times, got scale {}",
        snap.scale
    );
    // Full-width coverage: the windows tile the whole run.
    assert_eq!(snap.end_cycle, r.cycles_u64());
    assert!(snap.window_start(snap.samples() - 1) <= snap.end_cycle);

    // The series still reconcile exactly after all that merging.
    assert_eq!(
        snap.total(&snap.busy),
        r.bus.grants + r.bus.data_cycles,
        "busy cycles reconcile after decimation"
    );
    assert_eq!(snap.total(&snap.retries), r.bus.retries);
    assert!(
        snap.total(&snap.bridge_crossings) > 0,
        "ping-ponging one line across a bridged fabric must cross"
    );
    assert!(
        snap.grants.iter().all(|g| snap.total(g) > 0),
        "every master won grants"
    );

    // The kernel profile confirms the warp-heavy execution that makes
    // this soak cheap: most cycles were skipped, not stepped.
    let p = r.profile.as_ref().expect("profiling armed");
    assert!(
        p.warped_cycles > r.cycles_u64() / 2,
        "warps must dominate a delay-heavy soak: {p:?}"
    );
    let mix = p.mix.as_ref().expect("mix rides with the registry");
    assert_eq!(
        mix.warped.iter().sum::<u64>()
            + mix.cpu_only.iter().sum::<u64>()
            + mix.full.iter().sum::<u64>(),
        r.cycles_u64(),
        "every advanced cycle lands in exactly one mix bucket"
    );
    assert!(p.wall_ns > 0 && p.cycles_per_sec > 0.0);
}
