//! Metrics/trace reconciliation on the golden WCS figure cell.
//!
//! The observability stack must be a pure read-side: with spans and
//! histograms enabled, the golden (Worst, Proposed) cell of
//! `golden_totals.rs` must not move a cycle, and every derived metric must
//! reconcile *exactly* with the independently-maintained `BusStats` /
//! `CounterBank` totals. A histogram that under- or over-counts by one
//! would pass any eyeball check of a timeline; it cannot pass this.

use hmp_bench::figure_params;
use hmp_platform::Strategy;
use hmp_sim::export::{chrome_trace, metrics_json, validate_json};
use hmp_sim::RetryCause;
use hmp_workloads::{prepare, RunSpec, Scenario};

/// The pinned golden (Worst, Proposed) totals from `golden_totals.rs`.
const GOLDEN: (u64, u64, u64, u64) = (30852, 4488, 1824, 256);

#[test]
fn metrics_reconcile_exactly_on_the_golden_wcs_cell() {
    let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, figure_params(32, 1))
        .with_spans(8192)
        .with_invariants();
    let mut sys = prepare(&spec);
    let r = sys.run(spec.max_cycles);
    assert!(r.is_clean_completion(), "{r}");

    // Observability must be side-effect-free on timing: the golden cell
    // may not drift just because metrics and invariants are enabled.
    assert_eq!(
        (r.cycles_u64(), r.bus.grants, r.bus.retries, r.bus.drains),
        GOLDEN,
        "enabling metrics/invariants moved the golden totals"
    );

    let snap = r.metrics.as_ref().expect("span capacity > 0");

    // Event-derived totals against the bus's own bookkeeping.
    assert_eq!(snap.grants, r.bus.grants, "grants");
    assert_eq!(snap.retries, r.bus.retries, "retries");
    assert_eq!(snap.drains_completed, r.bus.drains, "drains");
    assert_eq!(
        snap.retry_by_cause.iter().sum::<u64>(),
        r.bus.retries,
        "per-cause retry split must sum to the total"
    );

    // Retry causes against the CounterBank's legacy stats keys.
    for cause in RetryCause::ALL {
        assert_eq!(
            snap.retry_by_cause[cause as usize],
            r.stats.get(&format!("bus.retry.{}", cause.key())),
            "bus.retry.{}",
            cause.key()
        );
    }

    // Span accounting: every completed bus transaction closed exactly one
    // span, and every closed span landed in both latency histograms.
    assert_eq!(snap.span_orphans, 0, "no event may miss its span");
    assert_eq!(snap.spans_recorded, snap.completions, "one span per txn");
    assert_eq!(snap.service_time.count(), snap.completions);
    assert_eq!(snap.acquire_wait.count(), snap.completions);
    assert_eq!(snap.retries_per_txn.count(), snap.completions);
    assert_eq!(
        snap.retries_per_txn.sum(),
        r.bus.retries,
        "per-span retry attribution must sum to the bus total"
    );

    // The WCS workload actually exercises the interesting paths.
    assert!(snap.isr_latency.count() > 0, "WCS drains through the ISR");
    assert!(!snap.top_retry_addrs.is_empty(), "hot addresses tracked");

    // Both exports parse, and the timeline carries one complete ("X")
    // event per retained completed span.
    let m = sys.metrics().unwrap();
    let trace = chrome_trace(m.spans().iter(), m.events().iter(), sys.cpu_names());
    validate_json(&trace).expect("chrome trace must parse");
    let complete_events = trace.matches(r#""ph":"X""#).count() as u64;
    let retained = snap.spans_recorded - snap.spans_dropped;
    assert!(
        complete_events >= retained,
        "trace has {complete_events} complete events for {retained} retained spans"
    );

    let mjson = metrics_json(snap);
    validate_json(&mjson).expect("metrics JSON must parse");
    assert!(
        mjson.contains(&format!("\"grants\":{}", r.bus.grants)),
        "{mjson}"
    );
}

#[test]
fn all_golden_cells_reconcile_spans_with_completions() {
    for (scenario, strategy) in [
        (Scenario::Worst, Strategy::CacheDisabled),
        (Scenario::Worst, Strategy::SoftwareDrain),
        (Scenario::Best, Strategy::Proposed),
        (Scenario::Typical, Strategy::Proposed),
    ] {
        let spec = RunSpec::new(scenario, strategy, figure_params(8, 1)).with_spans(65536);
        let mut sys = prepare(&spec);
        let r = sys.run(spec.max_cycles);
        assert!(r.is_clean_completion(), "{scenario}/{strategy}: {r}");
        let snap = r.metrics.as_ref().unwrap();
        assert_eq!(snap.span_orphans, 0, "{scenario}/{strategy}");
        assert_eq!(
            snap.spans_recorded, snap.completions,
            "{scenario}/{strategy}"
        );
        assert_eq!(
            snap.retries_per_txn.sum(),
            r.bus.retries,
            "{scenario}/{strategy}"
        );
        let m = sys.metrics().unwrap();
        let trace = chrome_trace(m.spans().iter(), m.events().iter(), sys.cpu_names());
        validate_json(&trace).unwrap_or_else(|e| panic!("{scenario}/{strategy}: {e}"));
    }
}
