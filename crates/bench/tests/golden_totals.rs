//! Cycle-count invariance pins for the coherence-pipeline refactor.
//!
//! The PR 1 refactor (typed coherence pipeline + Observer instrumentation)
//! must not move a single simulated cycle: these goldens were captured on
//! the pre-refactor monolithic `System` loop and pin the `RunResult`
//! totals for the paper's figure workloads at (lines = 32, exec_time = 1)
//! under all three shared-data strategies.

use hmp_bench::figure_params;
use hmp_platform::Strategy;
use hmp_sim::TimeSeriesSpec;
use hmp_workloads::{run, RunSpec, Scenario};

/// (scenario, strategy, cycles, bus grants, bus retries, bus drains).
const GOLDEN: &[(Scenario, Strategy, u64, u64, u64, u64)] = &[
    // Captured on the pre-refactor monolithic `System` (PR 1 baseline).
    (
        Scenario::Worst,
        Strategy::CacheDisabled,
        112164,
        15912,
        0,
        0,
    ),
    (Scenario::Worst, Strategy::SoftwareDrain, 32932, 3176, 0, 0),
    (Scenario::Worst, Strategy::Proposed, 30852, 4488, 1824, 256),
    (
        Scenario::Typical,
        Strategy::CacheDisabled,
        112164,
        15912,
        0,
        0,
    ),
    (
        Scenario::Typical,
        Strategy::SoftwareDrain,
        32932,
        3176,
        0,
        0,
    ),
    (Scenario::Typical, Strategy::Proposed, 20946, 2309, 256, 32),
    (Scenario::Best, Strategy::CacheDisabled, 35017, 4112, 0, 0),
    (Scenario::Best, Strategy::SoftwareDrain, 18121, 528, 0, 0),
    (Scenario::Best, Strategy::Proposed, 10857, 48, 0, 0),
];

#[test]
fn figure_workloads_cycle_totals_are_pinned() {
    for &(scenario, strategy, cycles, grants, retries, drains) in GOLDEN {
        let spec = RunSpec::new(scenario, strategy, figure_params(32, 1));
        let r = run(&spec);
        assert!(r.is_clean_completion(), "{scenario}/{strategy}: {r}");
        // On drift, rerun with `--nocapture` to read off the new totals —
        // but a drift here means the refactor moved cycles; fix that first.
        println!(
            "    (Scenario::{scenario:?}, Strategy::{strategy:?}, {}, {}, {}, {}),",
            r.cycles_u64(),
            r.bus.grants,
            r.bus.retries,
            r.bus.drains
        );
        assert_eq!(
            (r.cycles_u64(), r.bus.grants, r.bus.retries, r.bus.drains),
            (cycles, grants, retries, drains),
            "{scenario}/{strategy} drifted from the pre-refactor golden"
        );
    }
}

#[test]
fn telemetry_does_not_move_a_cycle() {
    // Arming the windowed telemetry registry and the kernel self-profile
    // is pure observation: every golden total must stay byte-identical,
    // and the registry's own busy series must reconcile exactly with the
    // bus statistics it mirrors.
    for &(scenario, strategy, cycles, grants, retries, drains) in GOLDEN {
        let spec = RunSpec::new(scenario, strategy, figure_params(32, 1))
            .with_timeseries(TimeSeriesSpec::with_window(1024))
            .with_profile();
        let r = run(&spec);
        assert!(r.is_clean_completion(), "{scenario}/{strategy}: {r}");
        assert_eq!(
            (r.cycles_u64(), r.bus.grants, r.bus.retries, r.bus.drains),
            (cycles, grants, retries, drains),
            "{scenario}/{strategy}: telemetry moved a pinned total"
        );
        let snap = r.timeseries.as_ref().expect("registry was armed");
        assert_eq!(
            snap.total(&snap.busy),
            r.bus.grants + r.bus.data_cycles,
            "{scenario}/{strategy}: windowed busy cycles must reconcile \
             with the bus grant + data-cycle totals"
        );
        assert_eq!(
            snap.total(&snap.retries),
            r.bus.retries,
            "{scenario}/{strategy}: windowed retries must reconcile"
        );
        let profile = r.profile.as_ref().expect("profiling was armed");
        assert!(profile.wall_ns > 0, "{scenario}/{strategy}: no wall time");
    }
}
