//! The per-processor bus wrapper.

use crate::{derive_policy, SharedSignalPolicy, WrapperPolicy};
use hmp_bus::BusOp;
use hmp_cache::{ProtocolKind, SnoopOp};

/// A snoop-translation wrapper around one processor's bus interface.
///
/// In the paper's hardware (Figures 1–3) the wrapper converts between the
/// processor's native bus protocol and the shared ASB *and* applies the two
/// coherence manipulations of [`WrapperPolicy`]. In this simulator the
/// protocol conversion is implicit (every core already speaks the modelled
/// bus), so the wrapper's observable behaviour is:
///
/// * [`Wrapper::translate_snoop`] — maps the operation on the wire to the
///   operation the local snoop port sees (read→write conversion happens
///   here; the memory controller always sees the real operation);
/// * [`Wrapper::gate_shared`] — maps the bus shared signal to the value the
///   local cache samples on a fill.
///
/// # Examples
///
/// ```
/// use hmp_bus::BusOp;
/// use hmp_cache::{ProtocolKind, SnoopOp};
/// use hmp_core::Wrapper;
///
/// // MESI processor on a MEI-reduced bus (PowerPC755 + Intel486 platform).
/// let mut w = Wrapper::for_system(ProtocolKind::Mesi, ProtocolKind::Mei);
/// assert_eq!(w.translate_snoop(&BusOp::ReadLine), SnoopOp::Write);
/// assert!(!w.gate_shared(true)); // shared gated low
/// ```
#[derive(Debug, Clone)]
pub struct Wrapper {
    protocol: ProtocolKind,
    policy: WrapperPolicy,
    reads_converted: u64,
    shared_overridden: u64,
}

impl Wrapper {
    /// Creates a wrapper with an explicit policy (ablation studies use
    /// this to switch individual knobs off).
    pub fn new(protocol: ProtocolKind, policy: WrapperPolicy) -> Self {
        Wrapper {
            protocol,
            policy,
            reads_converted: 0,
            shared_overridden: 0,
        }
    }

    /// Creates a wrapper whose policy is derived from the system's reduced
    /// protocol (the normal path; see [`crate::derive_policy`]).
    ///
    /// # Panics
    ///
    /// Panics on pairings the reduction lattice cannot produce.
    pub fn for_system(protocol: ProtocolKind, system: ProtocolKind) -> Self {
        Wrapper::new(protocol, derive_policy(protocol, system))
    }

    /// Cross-run reset: rebaselines the activity counters. Protocol and
    /// policy are configuration, not state, and stay as built.
    pub fn reset(&mut self) {
        self.reads_converted = 0;
        self.shared_overridden = 0;
    }

    /// The protocol of the wrapped processor.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The active policy.
    pub fn policy(&self) -> WrapperPolicy {
        self.policy
    }

    /// How many snooped reads were presented as writes.
    pub fn reads_converted(&self) -> u64 {
        self.reads_converted
    }

    /// How many sampled shared signals were overridden.
    pub fn shared_overridden(&self) -> u64 {
        self.shared_overridden
    }

    /// Maps an operation observed on the bus to what the local snoop port
    /// sees.
    ///
    /// Writes and upgrades pass through; reads become writes when the
    /// policy's conversion knob is on. Both burst and single-word
    /// operations are translated — an uncached word read of a line some
    /// cache holds must still behave per policy.
    pub fn translate_snoop(&mut self, op: &BusOp) -> SnoopOp {
        match op {
            BusOp::ReadLine | BusOp::ReadWord => {
                if self.policy.convert_read_to_write {
                    self.reads_converted += 1;
                    SnoopOp::Write
                } else {
                    SnoopOp::Read
                }
            }
            // Read-with-intent-to-modify is a write as far as snoopers are
            // concerned, whatever the policy says.
            BusOp::ReadLineExcl => SnoopOp::Write,
            BusOp::WriteLine(_) | BusOp::WriteWord(_) => SnoopOp::Write,
            BusOp::Upgrade => SnoopOp::Upgrade,
        }
    }

    /// Maps the bus shared signal to the value the local cache samples
    /// when completing a fill.
    pub fn gate_shared(&mut self, bus_shared: bool) -> bool {
        let out = match self.policy.shared_signal {
            SharedSignalPolicy::PassThrough => bus_shared,
            SharedSignalPolicy::ForceDeassert => false,
            SharedSignalPolicy::ForceAssert => true,
        };
        if out != bus_shared {
            self.shared_overridden += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolKind::*;

    #[test]
    fn transparent_wrapper_passes_everything() {
        let mut w = Wrapper::new(Mesi, WrapperPolicy::TRANSPARENT);
        assert_eq!(w.translate_snoop(&BusOp::ReadLine), SnoopOp::Read);
        assert_eq!(w.translate_snoop(&BusOp::ReadWord), SnoopOp::Read);
        assert_eq!(w.translate_snoop(&BusOp::WriteLine([0; 8])), SnoopOp::Write);
        assert_eq!(w.translate_snoop(&BusOp::WriteWord(1)), SnoopOp::Write);
        assert_eq!(w.translate_snoop(&BusOp::Upgrade), SnoopOp::Upgrade);
        assert_eq!(
            w.translate_snoop(&BusOp::ReadLineExcl),
            SnoopOp::Write,
            "RWITM snoops as a write even without conversion"
        );
        assert!(w.gate_shared(true));
        assert!(!w.gate_shared(false));
        assert_eq!(w.reads_converted(), 0);
        assert_eq!(w.shared_overridden(), 0);
    }

    #[test]
    fn conversion_rewrites_reads_only() {
        let mut w = Wrapper::for_system(Mesi, Mei);
        assert_eq!(w.translate_snoop(&BusOp::ReadLine), SnoopOp::Write);
        assert_eq!(w.translate_snoop(&BusOp::ReadWord), SnoopOp::Write);
        assert_eq!(w.translate_snoop(&BusOp::Upgrade), SnoopOp::Upgrade);
        assert_eq!(w.translate_snoop(&BusOp::WriteWord(0)), SnoopOp::Write);
        assert_eq!(w.reads_converted(), 2);
    }

    #[test]
    fn deassert_gates_shared_low() {
        let mut w = Wrapper::for_system(Moesi, Mei);
        assert!(!w.gate_shared(true));
        assert!(!w.gate_shared(false));
        assert_eq!(w.shared_overridden(), 1);
    }

    #[test]
    fn assert_gates_shared_high() {
        let mut w = Wrapper::for_system(Mesi, Msi);
        assert!(w.gate_shared(false), "read miss must fill Shared");
        assert!(w.gate_shared(true));
        assert_eq!(w.shared_overridden(), 1);
        assert!(!w.policy().convert_read_to_write);
    }

    #[test]
    fn accessors() {
        let w = Wrapper::for_system(Moesi, Msi);
        assert_eq!(w.protocol(), Moesi);
        assert!(w.policy().convert_read_to_write);
    }
}
