//! # hmp-core — heterogeneous coherence bridging (the paper's contribution)
//!
//! Everything specific to *"Supporting Cache Coherence in Heterogeneous
//! Multiprocessor Systems"* (Suh, Blough, Lee — DATE 2004) lives here:
//!
//! * [`reduce`] — the protocol-reduction lattice of §2: the set of
//!   protocols on the bus determines the greatest common sub-protocol the
//!   integrated system can run (MEI + anything → MEI; MSI + MESI/MOESI →
//!   MSI; MESI + MOESI → MESI).
//! * [`WrapperPolicy`] / [`derive_policy`] — the two wrapper knobs that
//!   implement the reduction: **read→write conversion** on the snoop path
//!   (removes S/O reachable via snooped reads; equivalently, asserting the
//!   Intel486 INV pin on read snoops) and **shared-signal forcing** on the
//!   request path (deassert to remove S on fills, assert to remove E).
//! * [`Wrapper`] — a processor-side bus wrapper applying a policy.
//! * [`SnoopLogic`] — the TAG-CAM + nFIQ assembly of §3 / Figure 3 that
//!   retrofits snooping onto a processor with no coherence hardware
//!   (ARM920T): it mirrors the data-cache tags, kills remote transactions
//!   that hit them (ARTRY) and interrupts the local core so its ISR can
//!   drain or invalidate the line.
//! * [`PlatformClass`] — the PF1/PF2/PF3 taxonomy of Table 1.
//!
//! # Examples
//!
//! ```
//! use hmp_cache::ProtocolKind;
//! use hmp_core::{derive_policy, reduce, SharedSignalPolicy};
//!
//! // Integrating a PowerPC755 (MEI) with a Pentium-class MESI processor
//! // reduces the system to MEI...
//! let system = reduce(&[ProtocolKind::Mei, ProtocolKind::Mesi]).unwrap();
//! assert_eq!(system, ProtocolKind::Mei);
//!
//! // ...so the MESI side's wrapper converts snooped reads to writes and
//! // gates the shared signal low.
//! let policy = derive_policy(ProtocolKind::Mesi, system);
//! assert!(policy.convert_read_to_write);
//! assert_eq!(policy.shared_signal, SharedSignalPolicy::ForceDeassert);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod platform_class;
mod policy;
mod reduction;
mod snoop_logic;
mod wrapper;

pub use platform_class::{classify_platform, CoherenceSupport, PlatformClass};
pub use policy::{derive_policy, SharedSignalPolicy, WrapperPolicy};
pub use reduction::{reduce, reduce_segments, ReduceError};
pub use snoop_logic::SnoopLogic;
pub use wrapper::Wrapper;
