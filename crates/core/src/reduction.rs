//! The protocol-reduction lattice of paper §2.
//!
//! "The integrated coherence protocol will at most consist of all the
//! common states from various protocols in a system" (§5). Concretely
//! (§2.1–2.3):
//!
//! * MEI + {MSI, MESI, MOESI} → **MEI** (remove S, and O where present);
//! * MSI + {MESI, MOESI} → **MSI** (remove E, and O where present);
//! * MESI + MOESI → **MESI** (remove O / cache-to-cache);
//! * a homogeneous set reduces to itself.
//!
//! Note the lattice is *not* a plain state-set intersection: MEI ∩ MSI
//! would be {M, I}, but the paper shows (§2.1.1) that MSI's unavoidable
//! `I → S` fill behaves exactly like `E` once remote reads are converted
//! to writes — "despite the name, the S state is equivalent to the E
//! state" — so the meet of MEI and MSI is MEI.

use core::fmt;
use hmp_cache::ProtocolKind;

/// Error returned by [`reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// No write-back protocol was supplied (a platform where *no* processor
    /// has coherence hardware is PF1; there is nothing to reduce — all
    /// coherence comes from snoop logic and interrupts).
    Empty,
    /// SI is a per-line write-through policy, not a processor protocol, and
    /// cannot participate in reduction.
    SiNotAProcessorProtocol,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Empty => write!(f, "no protocols to reduce"),
            ReduceError::SiNotAProcessorProtocol => {
                write!(f, "SI is a per-line policy, not a processor protocol")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Computes the greatest common sub-protocol of every coherent processor
/// on the bus.
///
/// # Errors
///
/// Returns [`ReduceError::Empty`] for an empty slice and
/// [`ReduceError::SiNotAProcessorProtocol`] if [`ProtocolKind::Si`]
/// appears (it governs individual write-through lines, never a whole
/// processor).
///
/// # Examples
///
/// ```
/// use hmp_cache::ProtocolKind::*;
/// use hmp_core::reduce;
/// assert_eq!(reduce(&[Mesi, Moesi]).unwrap(), Mesi);
/// assert_eq!(reduce(&[Moesi, Msi, Mesi]).unwrap(), Msi);
/// assert_eq!(reduce(&[Moesi, Moesi]).unwrap(), Moesi);
/// ```
pub fn reduce(protocols: &[ProtocolKind]) -> Result<ProtocolKind, ReduceError> {
    if protocols.is_empty() {
        return Err(ReduceError::Empty);
    }
    if protocols.contains(&ProtocolKind::Si) {
        return Err(ReduceError::SiNotAProcessorProtocol);
    }
    // The lattice is a chain: MEI < MSI < MESI < MOESI, where "<" means
    // "is the reduction result when mixed with anything above it".
    let rank = |p: ProtocolKind| match p {
        ProtocolKind::Mei => 0,
        ProtocolKind::Msi => 1,
        ProtocolKind::Mesi => 2,
        ProtocolKind::Moesi => 3,
        ProtocolKind::Si => unreachable!("rejected above"),
    };
    Ok(protocols
        .iter()
        .copied()
        .min_by_key(|&p| rank(p))
        .expect("non-empty"))
}

/// Per-segment GCS reduction for a segmented fabric: computes the meet
/// of each segment's coherent processors separately, then the fabric-wide
/// meet across the snooping bridge.
///
/// `protocols[i]` is master *i*'s native protocol (`None` for
/// non-coherent processors behind TAG CAMs — they contribute nothing to
/// reduction); `segment_map[i]` is its home segment. A segment with no
/// coherent master reduces to `None` (the PF1 situation, locally).
///
/// Because the lattice is a chain, the fabric meet equals the flat
/// [`reduce`] over all coherent masters — the per-segment view exists so
/// a bridge implementation can run each segment's wrappers at the widest
/// protocol its *local* masters allow while the bridge endpoint snoops at
/// the fabric-wide meet.
///
/// # Errors
///
/// Propagates [`ReduceError::SiNotAProcessorProtocol`]; an entirely
/// non-coherent fabric yields `(vec![None; segments], None)` rather than
/// [`ReduceError::Empty`].
///
/// # Panics
///
/// Panics if `segment_map` and `protocols` differ in length or a segment
/// index is out of range.
pub fn reduce_segments(
    protocols: &[Option<ProtocolKind>],
    segment_map: &[usize],
    segments: usize,
) -> Result<(Vec<Option<ProtocolKind>>, Option<ProtocolKind>), ReduceError> {
    assert_eq!(protocols.len(), segment_map.len(), "map width mismatch");
    assert!(
        segment_map.iter().all(|&s| s < segments),
        "segment index out of range"
    );
    let mut per_segment = Vec::with_capacity(segments);
    let mut scratch = Vec::new();
    for seg in 0..segments {
        scratch.clear();
        scratch.extend(
            protocols
                .iter()
                .zip(segment_map)
                .filter(|&(_, &s)| s == seg)
                .filter_map(|(p, _)| *p),
        );
        per_segment.push(match reduce(&scratch) {
            Ok(p) => Some(p),
            Err(ReduceError::Empty) => None,
            Err(e) => return Err(e),
        });
    }
    let fabric: Vec<ProtocolKind> = per_segment.iter().copied().flatten().collect();
    let fabric = match reduce(&fabric) {
        Ok(p) => Some(p),
        Err(ReduceError::Empty) => None,
        Err(e) => return Err(e),
    };
    Ok((per_segment, fabric))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolKind::*;

    #[test]
    fn paper_section_2_1_mei_absorbs_everything() {
        for other in [Msi, Mesi, Moesi] {
            assert_eq!(reduce(&[Mei, other]).unwrap(), Mei);
            assert_eq!(reduce(&[other, Mei]).unwrap(), Mei);
        }
    }

    #[test]
    fn paper_section_2_2_msi_absorbs_mesi_and_moesi() {
        assert_eq!(reduce(&[Msi, Mesi]).unwrap(), Msi);
        assert_eq!(reduce(&[Msi, Moesi]).unwrap(), Msi);
    }

    #[test]
    fn paper_section_2_3_mesi_with_moesi() {
        assert_eq!(reduce(&[Mesi, Moesi]).unwrap(), Mesi);
    }

    #[test]
    fn homogeneous_is_identity() {
        for p in [Mei, Msi, Mesi, Moesi] {
            assert_eq!(reduce(&[p]).unwrap(), p);
            assert_eq!(reduce(&[p, p, p]).unwrap(), p);
        }
    }

    #[test]
    fn more_than_two_processors() {
        assert_eq!(reduce(&[Moesi, Mesi, Msi]).unwrap(), Msi);
        assert_eq!(reduce(&[Moesi, Mesi, Msi, Mei]).unwrap(), Mei);
    }

    #[test]
    fn reduction_is_commutative_and_associative() {
        let all = [Mei, Msi, Mesi, Moesi];
        for &a in &all {
            for &b in &all {
                assert_eq!(reduce(&[a, b]).unwrap(), reduce(&[b, a]).unwrap());
                for &c in &all {
                    let left = reduce(&[reduce(&[a, b]).unwrap(), c]).unwrap();
                    let right = reduce(&[a, reduce(&[b, c]).unwrap()]).unwrap();
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn result_states_are_subset_of_every_input() {
        // The reduced protocol's states must be expressible by every
        // processor, *except* that MSI's S stands in for E (paper §2.1.1).
        let all = [Mei, Msi, Mesi, Moesi];
        for &a in &all {
            for &b in &all {
                let r = reduce(&[a, b]).unwrap();
                for s in r.protocol().states() {
                    let ok = |p: ProtocolKind| {
                        p.has_state(*s) || (p == Msi && *s == hmp_cache::LineState::Exclusive)
                    };
                    assert!(ok(a) && ok(b), "{a}+{b} → {r} but {s} unsupported");
                }
            }
        }
    }

    #[test]
    fn segmented_reduction_per_segment_and_fabric_meet() {
        // Segment 0: MOESI+MESI → MESI; segment 1: MSI alone → MSI;
        // fabric meet: MSI.
        let (per_seg, fabric) =
            reduce_segments(&[Some(Moesi), Some(Mesi), Some(Msi)], &[0, 0, 1], 2).unwrap();
        assert_eq!(per_seg, vec![Some(Mesi), Some(Msi)]);
        assert_eq!(fabric, Some(Msi));
    }

    #[test]
    fn segmented_reduction_handles_non_coherent_masters() {
        // A CAM-guarded master (None) contributes nothing; a segment of
        // only such masters reduces to None while the fabric meet still
        // reflects the coherent side.
        let (per_seg, fabric) = reduce_segments(&[Some(Mesi), None, None], &[0, 1, 1], 2).unwrap();
        assert_eq!(per_seg, vec![Some(Mesi), None]);
        assert_eq!(fabric, Some(Mesi));
        // An entirely non-coherent fabric (PF1) is not an error.
        let (per_seg, fabric) = reduce_segments(&[None, None], &[0, 0], 1).unwrap();
        assert_eq!(per_seg, vec![None]);
        assert_eq!(fabric, None);
    }

    #[test]
    fn segmented_fabric_meet_equals_flat_reduce() {
        // The chain lattice makes the bridge transparent to reduction:
        // any segment assignment yields the same fabric-wide meet.
        let protocols = [Some(Moesi), Some(Mei), Some(Mesi), Some(Msi)];
        let flat = reduce(&[Moesi, Mei, Mesi, Msi]).unwrap();
        for map in [[0, 0, 1, 1], [0, 1, 0, 1], [1, 1, 0, 0], [0, 0, 0, 0]] {
            let segments = map.iter().max().unwrap() + 1;
            let (_, fabric) = reduce_segments(&protocols, &map, segments).unwrap();
            assert_eq!(fabric, Some(flat), "map {map:?}");
        }
    }

    #[test]
    fn segmented_reduction_rejects_si() {
        assert_eq!(
            reduce_segments(&[Some(Si)], &[0], 1).unwrap_err(),
            ReduceError::SiNotAProcessorProtocol
        );
    }

    #[test]
    fn errors() {
        assert_eq!(reduce(&[]).unwrap_err(), ReduceError::Empty);
        assert_eq!(
            reduce(&[Mesi, Si]).unwrap_err(),
            ReduceError::SiNotAProcessorProtocol
        );
        assert!(ReduceError::Empty.to_string().contains("no protocols"));
    }
}
