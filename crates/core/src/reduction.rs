//! The protocol-reduction lattice of paper §2.
//!
//! "The integrated coherence protocol will at most consist of all the
//! common states from various protocols in a system" (§5). Concretely
//! (§2.1–2.3):
//!
//! * MEI + {MSI, MESI, MOESI} → **MEI** (remove S, and O where present);
//! * MSI + {MESI, MOESI} → **MSI** (remove E, and O where present);
//! * MESI + MOESI → **MESI** (remove O / cache-to-cache);
//! * a homogeneous set reduces to itself.
//!
//! Note the lattice is *not* a plain state-set intersection: MEI ∩ MSI
//! would be {M, I}, but the paper shows (§2.1.1) that MSI's unavoidable
//! `I → S` fill behaves exactly like `E` once remote reads are converted
//! to writes — "despite the name, the S state is equivalent to the E
//! state" — so the meet of MEI and MSI is MEI.

use core::fmt;
use hmp_cache::ProtocolKind;

/// Error returned by [`reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// No write-back protocol was supplied (a platform where *no* processor
    /// has coherence hardware is PF1; there is nothing to reduce — all
    /// coherence comes from snoop logic and interrupts).
    Empty,
    /// SI is a per-line write-through policy, not a processor protocol, and
    /// cannot participate in reduction.
    SiNotAProcessorProtocol,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Empty => write!(f, "no protocols to reduce"),
            ReduceError::SiNotAProcessorProtocol => {
                write!(f, "SI is a per-line policy, not a processor protocol")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Computes the greatest common sub-protocol of every coherent processor
/// on the bus.
///
/// # Errors
///
/// Returns [`ReduceError::Empty`] for an empty slice and
/// [`ReduceError::SiNotAProcessorProtocol`] if [`ProtocolKind::Si`]
/// appears (it governs individual write-through lines, never a whole
/// processor).
///
/// # Examples
///
/// ```
/// use hmp_cache::ProtocolKind::*;
/// use hmp_core::reduce;
/// assert_eq!(reduce(&[Mesi, Moesi]).unwrap(), Mesi);
/// assert_eq!(reduce(&[Moesi, Msi, Mesi]).unwrap(), Msi);
/// assert_eq!(reduce(&[Moesi, Moesi]).unwrap(), Moesi);
/// ```
pub fn reduce(protocols: &[ProtocolKind]) -> Result<ProtocolKind, ReduceError> {
    if protocols.is_empty() {
        return Err(ReduceError::Empty);
    }
    if protocols.contains(&ProtocolKind::Si) {
        return Err(ReduceError::SiNotAProcessorProtocol);
    }
    // The lattice is a chain: MEI < MSI < MESI < MOESI, where "<" means
    // "is the reduction result when mixed with anything above it".
    let rank = |p: ProtocolKind| match p {
        ProtocolKind::Mei => 0,
        ProtocolKind::Msi => 1,
        ProtocolKind::Mesi => 2,
        ProtocolKind::Moesi => 3,
        ProtocolKind::Si => unreachable!("rejected above"),
    };
    Ok(protocols
        .iter()
        .copied()
        .min_by_key(|&p| rank(p))
        .expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolKind::*;

    #[test]
    fn paper_section_2_1_mei_absorbs_everything() {
        for other in [Msi, Mesi, Moesi] {
            assert_eq!(reduce(&[Mei, other]).unwrap(), Mei);
            assert_eq!(reduce(&[other, Mei]).unwrap(), Mei);
        }
    }

    #[test]
    fn paper_section_2_2_msi_absorbs_mesi_and_moesi() {
        assert_eq!(reduce(&[Msi, Mesi]).unwrap(), Msi);
        assert_eq!(reduce(&[Msi, Moesi]).unwrap(), Msi);
    }

    #[test]
    fn paper_section_2_3_mesi_with_moesi() {
        assert_eq!(reduce(&[Mesi, Moesi]).unwrap(), Mesi);
    }

    #[test]
    fn homogeneous_is_identity() {
        for p in [Mei, Msi, Mesi, Moesi] {
            assert_eq!(reduce(&[p]).unwrap(), p);
            assert_eq!(reduce(&[p, p, p]).unwrap(), p);
        }
    }

    #[test]
    fn more_than_two_processors() {
        assert_eq!(reduce(&[Moesi, Mesi, Msi]).unwrap(), Msi);
        assert_eq!(reduce(&[Moesi, Mesi, Msi, Mei]).unwrap(), Mei);
    }

    #[test]
    fn reduction_is_commutative_and_associative() {
        let all = [Mei, Msi, Mesi, Moesi];
        for &a in &all {
            for &b in &all {
                assert_eq!(reduce(&[a, b]).unwrap(), reduce(&[b, a]).unwrap());
                for &c in &all {
                    let left = reduce(&[reduce(&[a, b]).unwrap(), c]).unwrap();
                    let right = reduce(&[a, reduce(&[b, c]).unwrap()]).unwrap();
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn result_states_are_subset_of_every_input() {
        // The reduced protocol's states must be expressible by every
        // processor, *except* that MSI's S stands in for E (paper §2.1.1).
        let all = [Mei, Msi, Mesi, Moesi];
        for &a in &all {
            for &b in &all {
                let r = reduce(&[a, b]).unwrap();
                for s in r.protocol().states() {
                    let ok = |p: ProtocolKind| {
                        p.has_state(*s) || (p == Msi && *s == hmp_cache::LineState::Exclusive)
                    };
                    assert!(ok(a) && ok(b), "{a}+{b} → {r} but {s} unsupported");
                }
            }
        }
    }

    #[test]
    fn errors() {
        assert_eq!(reduce(&[]).unwrap_err(), ReduceError::Empty);
        assert_eq!(
            reduce(&[Mesi, Si]).unwrap_err(),
            ReduceError::SiNotAProcessorProtocol
        );
        assert!(ReduceError::Empty.to_string().contains("no protocols"));
    }
}
