//! TAG-CAM snoop logic for processors without coherence hardware.

use hmp_mem::{Addr, LINE_BYTES};
use hmp_sim::{Cycle, Observer, SimEvent};
use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Single-multiply hasher for CAM tags. Tags are 32-bit line bases —
/// already well-distributed after one Fibonacci multiply — and the CAM
/// is probed on every snooped fill/writeback, where the default
/// DoS-resistant SipHash would dominate the lookup cost. Keys are
/// simulator-internal addresses, so hash-flooding resistance buys
/// nothing here.
#[derive(Default)]
pub(crate) struct TagHasher(u64);

impl Hasher for TagHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the tag sets only ever hash u32 keys.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
    }
}

/// A `HashSet<u32>` keyed by [`TagHasher`].
type TagSet = HashSet<u32, BuildHasherDefault<TagHasher>>;

/// The external snooping assembly of paper §3 / Figure 3.
///
/// The ARM920T "does not have any native cache coherence support", so the
/// platform adds logic that:
///
/// 1. watches the bus transactions *initiated by the ARM itself* to keep a
///    content-addressable memory (TAG CAM) of the lines its data cache
///    holds;
/// 2. matches every *remote* master's address against the CAM; on a hit it
///    kills the remote transaction (ARTRY) and raises the ARM's fast
///    interrupt (**nFIQ**);
/// 3. lets the ARM's interrupt service routine drain (dirty) or invalidate
///    (clean) the hit line, after which the remote master's retry
///    succeeds.
///
/// ### Conservatism
///
/// The CAM only sees bus traffic, so it cannot observe *clean* local
/// evictions (they produce no transaction). This model therefore keeps a
/// conservative **superset** of the cache's tags: stale entries cause an
/// occasional spurious interrupt whose ISR finds nothing to drain and
/// simply acknowledges, never a missed snoop — the safe direction. Dirty
/// evictions do appear on the bus (write-backs) and prune the CAM
/// immediately.
///
/// ### Capacity
///
/// Two storage organisations are provided:
///
/// * [`SnoopLogic::new`] — an unbounded *full-map* CAM, the idealised
///   hardware ("keeps **all** the address tags", paper §3);
/// * [`SnoopLogic::with_geometry`] — a finite set-associative CAM
///   mirroring a realistic silicon budget. When a fill would overflow a
///   set, the least-recently-filled tag is moved to a small overflow
///   buffer and queued for the drain ISR (a **capacity interrupt**): the
///   processor is forced to evict the line so the CAM can stay a superset
///   of the cache. This is the standard inclusive-structure
///   back-invalidate, realised through the same nFIQ path the paper
///   already requires.
///
/// # Examples
///
/// ```
/// use hmp_core::SnoopLogic;
/// use hmp_mem::Addr;
/// use hmp_sim::{Cycle, NullObserver};
///
/// let mut cam = SnoopLogic::new();
/// let (at, mut obs) = (Cycle::ZERO, NullObserver);
/// cam.observe_local_fill(Addr::new(0x100));
/// assert!(cam.check_remote(Addr::new(0x11C), at, &mut obs)); // same line → ARTRY + nFIQ
/// assert!(cam.nfiq());
/// let line = cam.next_pending().unwrap();
/// cam.ack(line); // ISR drained/invalidated it
/// assert!(!cam.nfiq());
/// assert!(!cam.check_remote(Addr::new(0x100), at, &mut obs));
/// ```
#[derive(Debug, Clone)]
pub struct SnoopLogic {
    storage: Storage,
    pending: VecDeque<u32>,
    remote_hits: u64,
    fills_observed: u64,
    capacity_evictions: u64,
    /// Index of the owning processor, carried in emitted [`SimEvent`]s.
    owner: usize,
    /// Counted occupancy filter over CAM membership: per-bucket tag counts
    /// plus a one-bit-per-bucket summary. [`may_match`](SnoopLogic::may_match)
    /// answering `false` guarantees the CAM holds no tag for the address,
    /// letting the address phase skip the full lookup.
    occupancy: [u32; FILTER_BUCKETS],
    occupied: u64,
}

const FILTER_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
enum Storage {
    FullMap(TagSet),
    Mirrored {
        sets: u32,
        ways: u32,
        /// Per set, tags most-recently-filled first.
        entries: Vec<Vec<u32>>,
        /// Tags evicted for capacity, awaiting their forced drain.
        overflow: TagSet,
    },
}

impl SnoopLogic {
    /// Creates unbounded (full-map) snoop logic.
    pub fn new() -> Self {
        SnoopLogic {
            storage: Storage::FullMap(TagSet::default()),
            pending: VecDeque::new(),
            remote_hits: 0,
            fills_observed: 0,
            capacity_evictions: 0,
            owner: 0,
            occupancy: [0; FILTER_BUCKETS],
            occupied: 0,
        }
    }

    /// Tags the CAM with its owning processor's index; the tag only
    /// labels emitted [`SimEvent`]s.
    #[must_use]
    pub fn with_owner(mut self, owner: usize) -> Self {
        self.owner = owner;
        self
    }

    /// Creates a finite set-associative CAM of `sets × ways` tags.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn with_geometry(sets: u32, ways: u32) -> Self {
        assert!(
            sets.is_power_of_two(),
            "CAM set count must be a power of two"
        );
        assert!(ways > 0, "CAM needs at least one way");
        SnoopLogic {
            storage: Storage::Mirrored {
                sets,
                ways,
                entries: (0..sets)
                    .map(|_| Vec::with_capacity(ways as usize))
                    .collect(),
                overflow: TagSet::default(),
            },
            pending: VecDeque::new(),
            remote_hits: 0,
            fills_observed: 0,
            capacity_evictions: 0,
            owner: 0,
            occupancy: [0; FILTER_BUCKETS],
            occupied: 0,
        }
    }

    fn filter_bucket(line: u32) -> usize {
        (((line / LINE_BYTES).wrapping_mul(0x9E37_79B9)) >> 26) as usize
    }

    fn filter_add(&mut self, line: u32) {
        let b = Self::filter_bucket(line);
        self.occupancy[b] += 1;
        self.occupied |= 1 << b;
    }

    fn filter_remove(&mut self, line: u32) {
        let b = Self::filter_bucket(line);
        debug_assert!(self.occupancy[b] > 0, "CAM filter underflow");
        self.occupancy[b] -= 1;
        if self.occupancy[b] == 0 {
            self.occupied &= !(1 << b);
        }
    }

    /// Conservative membership filter: `false` guarantees no tag for
    /// `addr`'s line is held (neither in the sets nor the overflow
    /// buffer), so [`check_remote`](SnoopLogic::check_remote) would miss.
    /// `true` says nothing — the full lookup decides.
    #[inline]
    pub fn may_match(&self, addr: Addr) -> bool {
        self.occupied & (1 << Self::filter_bucket(addr.line_base().as_u32())) != 0
    }

    /// Empties the CAM for a cross-run reset, reusing every allocation:
    /// storage, overflow, and pending queue are cleared in place and the
    /// counters rebaselined to zero.
    pub fn clear(&mut self) {
        match &mut self.storage {
            Storage::FullMap(tags) => tags.clear(),
            Storage::Mirrored {
                entries, overflow, ..
            } => {
                for set in entries {
                    set.clear();
                }
                overflow.clear();
            }
        }
        self.pending.clear();
        self.remote_hits = 0;
        self.fills_observed = 0;
        self.capacity_evictions = 0;
        self.occupancy = [0; FILTER_BUCKETS];
        self.occupied = 0;
    }

    fn set_of(sets: u32, line: u32) -> usize {
        ((line / LINE_BYTES) % sets) as usize
    }

    /// Records that the local processor filled a cache line (its miss was
    /// visible on the bus). On a finite CAM this may trigger a *capacity
    /// interrupt* for the tag it displaces.
    pub fn observe_local_fill(&mut self, addr: Addr) {
        let line = addr.line_base().as_u32();
        self.fills_observed += 1;
        // Capacity evictions move a tag into the overflow buffer, which
        // still counts as held, so a fill only ever adds `line` itself.
        if !self.holds(line) {
            self.filter_add(line);
        }
        match &mut self.storage {
            Storage::FullMap(tags) => {
                tags.insert(line);
            }
            Storage::Mirrored {
                sets,
                ways,
                entries,
                overflow,
            } => {
                let set = &mut entries[Self::set_of(*sets, line)];
                if let Some(pos) = set.iter().position(|&t| t == line) {
                    set.remove(pos);
                }
                set.insert(0, line);
                if set.len() > *ways as usize {
                    let victim = set.pop().expect("overfull set");
                    overflow.insert(victim);
                    if !self.pending.contains(&victim) {
                        self.pending.push_back(victim);
                    }
                    self.capacity_evictions += 1;
                }
            }
        }
    }

    /// Records that the local processor wrote a line back (dirty eviction
    /// or ISR drain — both visible on the bus), pruning the CAM.
    pub fn observe_local_writeback(&mut self, addr: Addr) {
        let line = addr.line_base().as_u32();
        if self.holds(line) {
            self.filter_remove(line);
        }
        match &mut self.storage {
            Storage::FullMap(tags) => {
                tags.remove(&line);
            }
            Storage::Mirrored {
                sets,
                entries,
                overflow,
                ..
            } => {
                entries[Self::set_of(*sets, line)].retain(|&t| t != line);
                overflow.remove(&line);
            }
        }
    }

    /// Fault injection: the CAM silently forgets `addr`'s tag — storage
    /// and overflow are pruned as if the line had been written back, but
    /// *no* drain happened and the pending queue is untouched. The real
    /// cache still holds the (possibly stale) line, which remote masters
    /// can now read without being killed: the TAG-CAM desync failure
    /// mode. Returns `true` if a tag was actually forgotten.
    pub fn desync_forget(&mut self, addr: Addr) -> bool {
        let line = addr.line_base().as_u32();
        if !self.holds(line) {
            return false;
        }
        self.observe_local_writeback(Addr::new(line));
        true
    }

    fn holds(&self, line: u32) -> bool {
        match &self.storage {
            Storage::FullMap(tags) => tags.contains(&line),
            Storage::Mirrored {
                sets,
                entries,
                overflow,
                ..
            } => overflow.contains(&line) || entries[Self::set_of(*sets, line)].contains(&line),
        }
    }

    /// Matches a remote master's address against the CAM. On a hit the
    /// line is queued for the ISR (once) and the caller must ARTRY the
    /// remote transaction; `nFIQ` stays asserted until every pending line
    /// is [`ack`](SnoopLogic::ack)ed.
    pub fn check_remote(&mut self, addr: Addr, at: Cycle, obs: &mut impl Observer) -> bool {
        let line = addr.line_base().as_u32();
        if !self.holds(line) {
            return false;
        }
        self.remote_hits += 1;
        if !self.pending.contains(&line) {
            self.pending.push_back(line);
        }
        obs.on_event(
            at,
            SimEvent::CamHit {
                owner: self.owner,
                addr: u64::from(addr.as_u32()),
            },
        );
        true
    }

    /// The fast-interrupt line: asserted while any snoop hit (or capacity
    /// eviction) awaits its ISR.
    pub fn nfiq(&self) -> bool {
        !self.pending.is_empty()
    }

    /// The oldest line awaiting ISR service.
    pub fn next_pending(&self) -> Option<Addr> {
        self.pending.front().map(|&l| Addr::new(l))
    }

    /// Acknowledges that the ISR drained/invalidated `addr`'s line: removes
    /// it from the CAM (and overflow buffer) and the pending queue.
    pub fn ack(&mut self, addr: Addr) {
        let line = addr.line_base().as_u32();
        self.observe_local_writeback(Addr::new(line));
        self.pending.retain(|&l| l != line);
    }

    /// Whether the CAM currently holds `addr`'s line.
    pub fn contains(&self, addr: Addr) -> bool {
        self.holds(addr.line_base().as_u32())
    }

    /// Number of tags currently held (overflow buffer included).
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::FullMap(tags) => tags.len(),
            Storage::Mirrored {
                entries, overflow, ..
            } => entries.iter().map(Vec::len).sum::<usize>() + overflow.len(),
        }
    }

    /// Returns `true` if the CAM is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remote transactions killed so far.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    /// Local fills observed so far.
    pub fn fills_observed(&self) -> u64 {
        self.fills_observed
    }

    /// Capacity interrupts raised so far (finite CAMs only).
    pub fn capacity_evictions(&self) -> u64 {
        self.capacity_evictions
    }
}

impl Default for SnoopLogic {
    fn default() -> Self {
        SnoopLogic::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::NullObserver;

    #[test]
    fn fill_then_remote_hit_raises_nfiq() {
        let mut cam = SnoopLogic::new();
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
        cam.observe_local_fill(Addr::new(0x104));
        assert!(cam.contains(Addr::new(0x100)), "line-granular");
        assert!(cam.check_remote(Addr::new(0x118), Cycle::ZERO, &mut NullObserver));
        assert!(cam.nfiq());
        assert_eq!(cam.next_pending(), Some(Addr::new(0x100)));
        assert_eq!(cam.remote_hits(), 1);
    }

    #[test]
    fn repeated_remote_hits_queue_once() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x100));
        assert!(cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
        assert!(
            cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver),
            "retries keep hitting"
        );
        assert_eq!(cam.remote_hits(), 2);
        cam.ack(Addr::new(0x100));
        assert!(!cam.nfiq());
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
    }

    #[test]
    fn desync_forget_drops_tag_but_keeps_pending() {
        let mut cam = SnoopLogic::new();
        assert!(!cam.desync_forget(Addr::new(0x100)), "nothing to forget");
        cam.observe_local_fill(Addr::new(0x100));
        cam.observe_local_fill(Addr::new(0x140));
        assert!(cam.check_remote(Addr::new(0x140), Cycle::ZERO, &mut NullObserver));
        assert!(cam.desync_forget(Addr::new(0x100)));
        // The desynced line no longer kills remote traffic...
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
        // ...but the already-raised interrupt for the other line survives.
        assert!(cam.nfiq());
        assert_eq!(cam.next_pending(), Some(Addr::new(0x140)));
    }

    #[test]
    fn writeback_prunes_cam() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x100));
        cam.observe_local_writeback(Addr::new(0x100));
        assert!(cam.is_empty());
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
    }

    #[test]
    fn multiple_pending_lines_fifo() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x100));
        cam.observe_local_fill(Addr::new(0x200));
        assert_eq!(cam.len(), 2);
        assert!(cam.check_remote(Addr::new(0x200), Cycle::ZERO, &mut NullObserver));
        assert!(cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
        assert_eq!(cam.next_pending(), Some(Addr::new(0x200)));
        cam.ack(Addr::new(0x200));
        assert_eq!(cam.next_pending(), Some(Addr::new(0x100)));
        assert!(cam.nfiq());
        cam.ack(Addr::new(0x100));
        assert!(!cam.nfiq());
        assert!(cam.is_empty());
    }

    #[test]
    fn stale_entries_are_conservative_not_wrong() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x100));
        // The cache silently (cleanly) evicted 0x100 — the CAM cannot see
        // that. A remote access still hits (spurious interrupt)…
        assert!(cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
        // …and the ISR, finding nothing in the cache, just acks.
        cam.ack(Addr::new(0x100));
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
    }

    #[test]
    fn fills_counter() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x0));
        cam.observe_local_fill(Addr::new(0x20));
        assert_eq!(cam.fills_observed(), 2);
    }

    // ---- finite (mirrored) CAM ----

    #[test]
    fn mirrored_cam_tracks_like_full_map_within_capacity() {
        let mut cam = SnoopLogic::with_geometry(2, 2);
        cam.observe_local_fill(Addr::new(0x000)); // set 0
        cam.observe_local_fill(Addr::new(0x020)); // set 1
        cam.observe_local_fill(Addr::new(0x040)); // set 0
        assert_eq!(cam.len(), 3);
        assert!(!cam.nfiq(), "within capacity: no interrupt");
        assert!(cam.check_remote(Addr::new(0x020), Cycle::ZERO, &mut NullObserver));
        cam.ack(Addr::new(0x020));
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn mirrored_cam_overflow_raises_capacity_interrupt() {
        let mut cam = SnoopLogic::with_geometry(2, 1);
        cam.observe_local_fill(Addr::new(0x000)); // set 0
        cam.observe_local_fill(Addr::new(0x040)); // set 0 → evicts 0x000
        assert!(cam.nfiq(), "capacity eviction raises nFIQ");
        assert_eq!(cam.next_pending(), Some(Addr::new(0x000)));
        assert_eq!(cam.capacity_evictions(), 1);
        // The overflowed tag still guards the line until the ISR acks…
        assert!(
            cam.check_remote(Addr::new(0x000), Cycle::ZERO, &mut NullObserver),
            "still conservative"
        );
        cam.ack(Addr::new(0x000));
        assert!(!cam.contains(Addr::new(0x000)));
        assert!(cam.contains(Addr::new(0x040)));
    }

    #[test]
    fn mirrored_cam_refill_touches_recency() {
        let mut cam = SnoopLogic::with_geometry(1, 2);
        cam.observe_local_fill(Addr::new(0x00));
        cam.observe_local_fill(Addr::new(0x20));
        cam.observe_local_fill(Addr::new(0x00)); // touch
        cam.observe_local_fill(Addr::new(0x40)); // evicts 0x20 (LRU)
        assert_eq!(cam.next_pending(), Some(Addr::new(0x20)));
        assert!(cam.contains(Addr::new(0x00)));
        assert!(cam.contains(Addr::new(0x40)));
    }

    #[test]
    fn mirrored_cam_writeback_prunes_overflow_too() {
        let mut cam = SnoopLogic::with_geometry(1, 1);
        cam.observe_local_fill(Addr::new(0x00));
        cam.observe_local_fill(Addr::new(0x20)); // 0x00 → overflow
        cam.observe_local_writeback(Addr::new(0x00));
        assert!(!cam.contains(Addr::new(0x00)));
        // The pending entry remains until acked (a spurious ISR at worst).
        assert!(cam.nfiq());
        cam.ack(Addr::new(0x00));
        assert!(!cam.nfiq());
    }

    #[test]
    fn filter_never_denies_a_held_tag() {
        let mut cam = SnoopLogic::with_geometry(2, 1);
        let addrs = [0x000u32, 0x020, 0x040, 0x060, 0x080];
        for &a in &addrs {
            cam.observe_local_fill(Addr::new(a));
            // Every held tag (sets + overflow) must be claimed.
            for &b in &addrs {
                if cam.contains(Addr::new(b)) {
                    assert!(cam.may_match(Addr::new(b)), "filter lost {b:#x}");
                }
            }
        }
        // Acks prune the filter along with the CAM.
        while let Some(line) = cam.next_pending() {
            cam.ack(line);
        }
        for &a in &addrs {
            cam.observe_local_writeback(Addr::new(a));
        }
        assert!(cam.is_empty());
        for &a in &addrs {
            assert!(
                !cam.may_match(Addr::new(a)),
                "empty CAM must not claim {a:#x} (collision counts leaked)"
            );
        }
    }

    #[test]
    fn filter_miss_means_check_remote_misses() {
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x100));
        cam.observe_local_writeback(Addr::new(0x100));
        assert!(!cam.may_match(Addr::new(0x100)));
        assert!(!cam.check_remote(Addr::new(0x100), Cycle::ZERO, &mut NullObserver));
    }

    #[test]
    fn clear_reuses_allocations_and_rebaselines() {
        let mut cam = SnoopLogic::with_geometry(2, 1);
        cam.observe_local_fill(Addr::new(0x000));
        cam.observe_local_fill(Addr::new(0x040)); // capacity interrupt
        assert!(cam.check_remote(Addr::new(0x040), Cycle::ZERO, &mut NullObserver));
        cam.clear();
        assert!(cam.is_empty());
        assert!(!cam.nfiq());
        assert_eq!(cam.remote_hits(), 0);
        assert_eq!(cam.fills_observed(), 0);
        assert_eq!(cam.capacity_evictions(), 0);
        assert!(!cam.may_match(Addr::new(0x000)));
        assert!(!cam.check_remote(Addr::new(0x000), Cycle::ZERO, &mut NullObserver));
        // Still usable after the reset.
        cam.observe_local_fill(Addr::new(0x080));
        assert!(cam.may_match(Addr::new(0x080)));
        assert!(cam.check_remote(Addr::new(0x080), Cycle::ZERO, &mut NullObserver));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn mirrored_cam_bad_sets_panics() {
        let _ = SnoopLogic::with_geometry(3, 1);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn mirrored_cam_zero_ways_panics() {
        let _ = SnoopLogic::with_geometry(2, 0);
    }
}
