//! Wrapper policies — the two knobs of paper §2.

use core::fmt;
use hmp_cache::ProtocolKind;

/// How a wrapper manipulates the shared signal its processor samples on a
/// read miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharedSignalPolicy {
    /// Pass the bus value through unmodified.
    PassThrough,
    /// Gate the signal low: the processor never fills Shared
    /// (removes the S state; paper §2.1.2).
    ForceDeassert,
    /// Drive the signal high on every read miss: the processor never fills
    /// Exclusive (removes the E state; paper §2.2).
    ForceAssert,
}

impl fmt::Display for SharedSignalPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharedSignalPolicy::PassThrough => write!(f, "pass-through"),
            SharedSignalPolicy::ForceDeassert => write!(f, "force-deassert"),
            SharedSignalPolicy::ForceAssert => write!(f, "force-assert"),
        }
    }
}

/// The per-processor wrapper configuration that implements a protocol
/// reduction.
///
/// * `convert_read_to_write` acts on the **snoop path**: the wrapper
///   presents observed bus reads to its processor's snoop port as writes,
///   so the cache drains/invalidates instead of moving toward Shared or
///   Owned. On the Intel486 this is realised by asserting the INV pin on
///   read snoop cycles (paper §3).
/// * `shared_signal` acts on the **request path**: it gates or forces the
///   shared signal the processor samples when filling a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrapperPolicy {
    /// Present remote bus reads to the local snoop port as writes.
    pub convert_read_to_write: bool,
    /// Manipulation of the shared signal sampled on local read misses.
    pub shared_signal: SharedSignalPolicy,
}

impl WrapperPolicy {
    /// A transparent wrapper (homogeneous platform; protocol conversion
    /// only, no coherence manipulation).
    pub const TRANSPARENT: WrapperPolicy = WrapperPolicy {
        convert_read_to_write: false,
        shared_signal: SharedSignalPolicy::PassThrough,
    };
}

impl Default for WrapperPolicy {
    fn default() -> Self {
        WrapperPolicy::TRANSPARENT
    }
}

impl fmt::Display for WrapperPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read→write: {}, shared: {}",
            if self.convert_read_to_write {
                "on"
            } else {
                "off"
            },
            self.shared_signal
        )
    }
}

/// Derives the wrapper policy for a processor speaking `own` on a bus whose
/// integrated protocol is `system` (from [`crate::reduce`]).
///
/// Case analysis straight from the paper:
///
/// | system | own | snoop read→write | shared signal |
/// |--------|-----|------------------|----------------|
/// | MEI    | MEI | no (§3: "not needed since the S state is not present") | deassert (no-op for MEI) |
/// | MEI    | MSI/MESI/MOESI | **yes** (§2.1) | **deassert** (§2.1.2) |
/// | MSI    | MSI | no | pass-through (MSI ignores it) |
/// | MSI    | MESI | no | **assert** (§2.2) |
/// | MSI    | MOESI | **yes** (§2.2, forbid M→O) | **assert** |
/// | MESI   | MESI | no | pass-through |
/// | MESI   | MOESI | **yes** (§2.3, forbid M→O and E→S) | pass-through |
/// | MOESI  | MOESI | no | pass-through |
///
/// # Panics
///
/// Panics if `own` is less capable than `system` (the reduction would never
/// produce that pairing) or if either side is [`ProtocolKind::Si`].
pub fn derive_policy(own: ProtocolKind, system: ProtocolKind) -> WrapperPolicy {
    use ProtocolKind::*;
    assert!(
        own != Si && system != Si,
        "SI is a per-line policy, not a processor protocol"
    );
    match (system, own) {
        (Mei, Mei) => WrapperPolicy {
            convert_read_to_write: false,
            shared_signal: SharedSignalPolicy::ForceDeassert,
        },
        (Mei, Msi | Mesi | Moesi) => WrapperPolicy {
            convert_read_to_write: true,
            shared_signal: SharedSignalPolicy::ForceDeassert,
        },
        (Msi, Msi) => WrapperPolicy::TRANSPARENT,
        (Msi, Mesi) => WrapperPolicy {
            convert_read_to_write: false,
            shared_signal: SharedSignalPolicy::ForceAssert,
        },
        (Msi, Moesi) => WrapperPolicy {
            convert_read_to_write: true,
            shared_signal: SharedSignalPolicy::ForceAssert,
        },
        (Mesi, Mesi) => WrapperPolicy::TRANSPARENT,
        (Mesi, Moesi) => WrapperPolicy {
            convert_read_to_write: true,
            shared_signal: SharedSignalPolicy::PassThrough,
        },
        (Moesi, Moesi) => WrapperPolicy::TRANSPARENT,
        (sys, own) => panic!("invalid reduction pairing: system {sys} cannot host processor {own}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolKind::*;

    #[test]
    fn mei_system_policies() {
        // The PowerPC755 side needs no conversion (§3).
        let ppc = derive_policy(Mei, Mei);
        assert!(!ppc.convert_read_to_write);
        assert_eq!(ppc.shared_signal, SharedSignalPolicy::ForceDeassert);
        // Every S-capable neighbour converts and deasserts (§2.1).
        for own in [Msi, Mesi, Moesi] {
            let p = derive_policy(own, Mei);
            assert!(p.convert_read_to_write, "{own}");
            assert_eq!(p.shared_signal, SharedSignalPolicy::ForceDeassert);
        }
    }

    #[test]
    fn msi_system_policies() {
        assert_eq!(derive_policy(Msi, Msi), WrapperPolicy::TRANSPARENT);
        let mesi = derive_policy(Mesi, Msi);
        assert!(!mesi.convert_read_to_write);
        assert_eq!(mesi.shared_signal, SharedSignalPolicy::ForceAssert);
        let moesi = derive_policy(Moesi, Msi);
        assert!(moesi.convert_read_to_write, "forbid M→O");
        assert_eq!(moesi.shared_signal, SharedSignalPolicy::ForceAssert);
    }

    #[test]
    fn mesi_system_policies() {
        assert_eq!(derive_policy(Mesi, Mesi), WrapperPolicy::TRANSPARENT);
        let moesi = derive_policy(Moesi, Mesi);
        assert!(moesi.convert_read_to_write);
        assert_eq!(moesi.shared_signal, SharedSignalPolicy::PassThrough);
    }

    #[test]
    fn homogeneous_moesi_is_transparent() {
        assert_eq!(derive_policy(Moesi, Moesi), WrapperPolicy::TRANSPARENT);
    }

    #[test]
    #[should_panic(expected = "invalid reduction pairing")]
    fn downgraded_processor_panics() {
        // A MEI processor can never appear on an MSI-reduced bus.
        let _ = derive_policy(Mei, Msi);
    }

    #[test]
    #[should_panic(expected = "per-line policy")]
    fn si_panics() {
        let _ = derive_policy(Si, Mesi);
    }

    #[test]
    fn display() {
        let p = derive_policy(Mesi, Mei);
        let s = p.to_string();
        assert!(s.contains("read→write: on"));
        assert!(s.contains("force-deassert"));
        assert_eq!(
            WrapperPolicy::default().to_string(),
            "read→write: off, shared: pass-through"
        );
        assert_eq!(SharedSignalPolicy::ForceAssert.to_string(), "force-assert");
    }
}
