//! The PF1/PF2/PF3 platform taxonomy of paper Table 1.

use core::fmt;
use hmp_cache::ProtocolKind;

/// Whether one processor brings its own cache-coherence hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceSupport {
    /// The processor's cache controller snoops natively with the given
    /// invalidation protocol (wrapper-based integration applies).
    Native(ProtocolKind),
    /// No coherence hardware at all (ARM920T): external TAG-CAM snoop
    /// logic plus an interrupt-driven drain ISR are required.
    None,
}

impl CoherenceSupport {
    /// The protocol, if the processor has one.
    pub fn protocol(self) -> Option<ProtocolKind> {
        match self {
            CoherenceSupport::Native(p) => Some(p),
            CoherenceSupport::None => None,
        }
    }
}

impl fmt::Display for CoherenceSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceSupport::Native(p) => write!(f, "native {p}"),
            CoherenceSupport::None => write!(f, "none"),
        }
    }
}

/// Table 1's three heterogeneous platform classes.
///
/// PF1 and PF2 need the special snoop-logic hardware and inherit its
/// limitation: lock variables must not be cacheable, or the hardware
/// deadlock of Figure 4 can occur. PF3 needs only wrappers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformClass {
    /// No processor has coherence hardware.
    Pf1,
    /// Some processors have coherence hardware, some do not.
    Pf2,
    /// Every processor has coherence hardware.
    Pf3,
}

impl PlatformClass {
    /// Whether this class requires the TAG-CAM snoop logic (and therefore
    /// is subject to the cacheable-lock hardware deadlock).
    pub fn needs_snoop_logic(self) -> bool {
        !matches!(self, PlatformClass::Pf3)
    }
}

impl fmt::Display for PlatformClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlatformClass::Pf1 => "PF1",
            PlatformClass::Pf2 => "PF2",
            PlatformClass::Pf3 => "PF3",
        };
        write!(f, "{s}")
    }
}

/// Classifies a platform from its processors' coherence support.
///
/// # Panics
///
/// Panics if `cpus` is empty.
///
/// # Examples
///
/// ```
/// use hmp_cache::ProtocolKind;
/// use hmp_core::{classify_platform, CoherenceSupport, PlatformClass};
///
/// // The paper's PowerPC755 + ARM920T platform:
/// let class = classify_platform(&[
///     CoherenceSupport::Native(ProtocolKind::Mei),
///     CoherenceSupport::None,
/// ]);
/// assert_eq!(class, PlatformClass::Pf2);
/// ```
pub fn classify_platform(cpus: &[CoherenceSupport]) -> PlatformClass {
    assert!(!cpus.is_empty(), "a platform needs at least one processor");
    let native = cpus
        .iter()
        .filter(|c| matches!(c, CoherenceSupport::Native(_)))
        .count();
    if native == cpus.len() {
        PlatformClass::Pf3
    } else if native == 0 {
        PlatformClass::Pf1
    } else {
        PlatformClass::Pf2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolKind::*;

    #[test]
    fn table1_rows() {
        // PF1: No / No.
        assert_eq!(
            classify_platform(&[CoherenceSupport::None, CoherenceSupport::None]),
            PlatformClass::Pf1
        );
        // PF2: Yes / No (either order).
        assert_eq!(
            classify_platform(&[CoherenceSupport::Native(Mei), CoherenceSupport::None]),
            PlatformClass::Pf2
        );
        assert_eq!(
            classify_platform(&[CoherenceSupport::None, CoherenceSupport::Native(Mesi)]),
            PlatformClass::Pf2
        );
        // PF3: Yes / Yes.
        assert_eq!(
            classify_platform(&[
                CoherenceSupport::Native(Mei),
                CoherenceSupport::Native(Mesi),
            ]),
            PlatformClass::Pf3
        );
    }

    #[test]
    fn extends_past_two_processors() {
        assert_eq!(
            classify_platform(&[
                CoherenceSupport::Native(Mesi),
                CoherenceSupport::Native(Moesi),
                CoherenceSupport::None,
            ]),
            PlatformClass::Pf2
        );
        assert_eq!(
            classify_platform(&[
                CoherenceSupport::Native(Msi),
                CoherenceSupport::Native(Moesi),
                CoherenceSupport::Native(Mesi),
            ]),
            PlatformClass::Pf3
        );
    }

    #[test]
    fn snoop_logic_requirement() {
        assert!(PlatformClass::Pf1.needs_snoop_logic());
        assert!(PlatformClass::Pf2.needs_snoop_logic());
        assert!(!PlatformClass::Pf3.needs_snoop_logic());
    }

    #[test]
    fn support_accessors() {
        assert_eq!(CoherenceSupport::Native(Mei).protocol(), Some(Mei));
        assert_eq!(CoherenceSupport::None.protocol(), None);
        assert_eq!(CoherenceSupport::Native(Mei).to_string(), "native MEI");
        assert_eq!(CoherenceSupport::None.to_string(), "none");
    }

    #[test]
    fn display() {
        assert_eq!(PlatformClass::Pf1.to_string(), "PF1");
        assert_eq!(PlatformClass::Pf2.to_string(), "PF2");
        assert_eq!(PlatformClass::Pf3.to_string(), "PF3");
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_platform_panics() {
        let _ = classify_platform(&[]);
    }
}
