//! Property-based mutual-exclusion testing of the lock algorithms.
//!
//! Lamport's Bakery algorithm and the turn lock are driven as explicit
//! state machines against a word-atomic shared memory, with a *random
//! interleaving schedule*: at every step a random party advances by one
//! memory operation. Mutual exclusion must hold for every schedule, and
//! every party must eventually pass through its critical section.
//!
//! (The state machines under test are the same `LockClient` code the CPU
//! interpreter executes; this harness just replaces the bus with an
//! atomic map.)

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp_cpu::{
    Cpu, CpuAction, CpuConfig, IsrConfig, LockKind, LockLayout, MemRequest, MemResult,
    ProgramBuilder, ReqKind,
};
use hmp_mem::Addr;
use hmp_sim::ClockDomain;
use proptest::prelude::*;
use std::collections::HashMap;

/// A 2–3 party mutual-exclusion run realised with whole `Cpu` models:
/// each CPU runs `acquire; (CS marker write); release` in a loop, and the
/// harness plays random scheduler, advancing one CPU's core clock per
/// step and servicing its memory requests instantly from a word map.
struct Harness {
    cpus: Vec<Cpu>,
    pending: Vec<Option<MemRequest>>,
    mem: HashMap<u32, u32>,
    in_cs: Vec<bool>,
}

const CS_FLAG: u32 = 0x9000;

impl Harness {
    fn new(kind: LockKind, parties: u32, rounds: u32) -> Self {
        let layout = LockLayout::new(kind, Addr::new(0x8000), parties);
        let mut cpus = Vec::new();
        for party in 0..parties {
            let mut b = ProgramBuilder::new();
            for _ in 0..rounds {
                b = b
                    .acquire(0)
                    // Critical section: set my flag, then clear it.
                    .write(Addr::new(CS_FLAG + party * 4), 1)
                    .write(Addr::new(CS_FLAG + party * 4), 0)
                    .release(0);
            }
            cpus.push(Cpu::new(
                party as usize,
                CpuConfig {
                    clock: ClockDomain::new(1),
                    isr: IsrConfig::default(),
                    lock_layout: layout,
                    lock_party: party,
                },
                b.build(),
            ));
        }
        Harness {
            pending: vec![None; cpus.len()],
            in_cs: vec![false; cpus.len()],
            cpus,
            mem: HashMap::new(),
        }
    }

    /// Advances CPU `i` one core cycle; memory ops complete instantly
    /// (single-word atomicity is all the algorithms assume).
    fn step(&mut self, i: usize) {
        if let Some(req) = self.pending[i].take() {
            match req.kind {
                ReqKind::Read => {
                    let v = *self.mem.get(&req.addr.as_u32()).unwrap_or(&0);
                    self.cpus[i].complete_mem(MemResult::Value(v));
                }
                ReqKind::Write(v) => {
                    self.mem.insert(req.addr.as_u32(), v);
                    // Track critical-section occupancy via the flag words.
                    if req.addr.as_u32() == CS_FLAG + (i as u32) * 4 {
                        self.in_cs[i] = v == 1;
                    }
                    self.cpus[i].complete_mem(MemResult::Done);
                }
                ReqKind::Flush | ReqKind::Invalidate => {
                    self.cpus[i].complete_maintenance();
                }
            }
            return;
        }
        if let CpuAction::Issue(req) = self.cpus[i].tick() {
            self.pending[i] = Some(req);
        }
    }

    fn all_halted(&self) -> bool {
        self.cpus.iter().all(|c| c.is_halted())
    }

    fn cs_occupancy(&self) -> usize {
        self.in_cs.iter().filter(|&&b| b).count()
    }
}

/// Turn-lock schedules must respect strict alternation, so random
/// schedules always terminate; bakery terminates under any schedule in
/// which every party keeps running.
fn run_schedule(
    kind: LockKind,
    parties: u32,
    rounds: u32,
    schedule_seed: u64,
) -> Result<(), TestCaseError> {
    let mut h = Harness::new(kind, parties, rounds);
    let mut rng = hmp_sim::SplitMix64::new(schedule_seed);
    let mut steps = 0u64;
    while !h.all_halted() {
        steps += 1;
        prop_assert!(steps < 2_000_000, "schedule did not terminate");
        let i = rng.gen_range(u64::from(parties)) as usize;
        h.step(i);
        prop_assert!(
            h.cs_occupancy() <= 1,
            "{kind}: two parties in the critical section"
        );
    }
    for cpu in &h.cpus {
        prop_assert_eq!(cpu.counters().lock_acquires, u64::from(rounds));
        prop_assert_eq!(cpu.counters().lock_releases, u64::from(rounds));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bakery_two_parties_mutual_exclusion(seed in any::<u64>(), rounds in 1..4u32) {
        run_schedule(LockKind::Bakery, 2, rounds, seed)?;
    }

    #[test]
    fn bakery_three_parties_mutual_exclusion(seed in any::<u64>(), rounds in 1..3u32) {
        run_schedule(LockKind::Bakery, 3, rounds, seed)?;
    }

    #[test]
    fn turn_lock_two_parties_mutual_exclusion(seed in any::<u64>(), rounds in 1..4u32) {
        run_schedule(LockKind::Turn, 2, rounds, seed)?;
    }

    #[test]
    fn turn_lock_three_parties_rotate(seed in any::<u64>(), rounds in 1..3u32) {
        run_schedule(LockKind::Turn, 3, rounds, seed)?;
    }
}

/// Deterministic adversarial schedule: one party is starved of steps for
/// long stretches; bakery must still exclude and finish.
#[test]
fn bakery_survives_lopsided_scheduling() {
    let mut h = Harness::new(LockKind::Bakery, 2, 3);
    let mut steps = 0u64;
    while !h.all_halted() {
        steps += 1;
        assert!(steps < 2_000_000, "did not terminate");
        // Party 0 gets 50 steps for each step of party 1.
        let i = usize::from(steps.is_multiple_of(51));
        h.step(i);
        assert!(h.cs_occupancy() <= 1, "mutual exclusion violated");
    }
    assert_eq!(h.cpus[0].counters().lock_acquires, 3);
    assert_eq!(h.cpus[1].counters().lock_acquires, 3);
}
