//! # hmp-cpu — the in-order processor model
//!
//! The paper's microbenchmarks run one task per processor; each task is a
//! loop of loads, stores, lock operations and explicit cache-maintenance
//! instructions. This crate models exactly that much of a CPU:
//!
//! * [`Op`] / [`Program`] — a tiny micro-op "ISA" (read, write, flush,
//!   invalidate, lock acquire/release, delay, halt) with counted loops,
//!   assembled through [`ProgramBuilder`];
//! * [`Cpu`] — a blocking, in-order interpreter: one micro-op at a time,
//!   stalling on memory, running in its own clock domain (the PowerPC755
//!   ticks twice per bus cycle, the ARM920T once);
//! * lock clients for the three lock placements the paper discusses
//!   ([`LockKind`]): an alternating *turn* lock in uncached memory
//!   (matching "each task acquiring the lock alternatively", §4), the
//!   1-bit hardware lock register (§3), and Lamport's Bakery algorithm in
//!   uncached memory (§3, first deadlock solution, citing its ref.\ 18);
//! * the snoop-drain **ISR**: when the platform's TAG-CAM raises nFIQ, the
//!   CPU (between instructions) enters a service routine that drains or
//!   invalidates the hit line ([`IsrConfig`] models entry/exit overhead
//!   and response latency — the paper's "interrupt response time").
//!
//! The CPU never touches a cache or bus directly: it emits
//! [`MemRequest`]s and consumes [`MemResult`]s; the platform crate wires
//! it to the memory system. That keeps this crate purely sequential and
//! easily testable against a scripted memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod locks;
mod op;
mod program;

pub use crate::core::{
    Cpu, CpuAction, CpuConfig, CpuCounters, CpuState, IsrConfig, MemRequest, MemResult, ReqKind,
};
pub use locks::{LockKind, LockLayout};
pub use op::Op;
pub use program::{Program, ProgramBuilder, Stmt};
