//! The micro-op "ISA".

use core::fmt;
use hmp_mem::Addr;

/// One micro-operation of the modelled task.
///
/// This is not a real instruction set — it is the minimal vocabulary the
/// paper's microbenchmarks need. Data accesses are word-granular; cache
/// maintenance is line-granular (PowerPC `dcbf`-style for
/// [`Op::FlushLine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load the word at the address.
    Read(Addr),
    /// Store the value to the word at the address.
    Write(Addr, u32),
    /// Write the line back if dirty, then invalidate it ("drain"). The
    /// software solution executes these before leaving a critical section;
    /// the snoop ISR executes one per CAM hit.
    FlushLine(Addr),
    /// Invalidate the (clean) line without writing back.
    InvalidateLine(Addr),
    /// Acquire lock `0`-indexed `id` (spins until owned).
    LockAcquire(u32),
    /// Release lock `id`.
    LockRelease(u32),
    /// Compute for the given number of core cycles without memory traffic.
    Delay(u32),
    /// Stop executing; the task is complete.
    Halt,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(a) => write!(f, "read {a}"),
            Op::Write(a, v) => write!(f, "write {a} <- {v}"),
            Op::FlushLine(a) => write!(f, "flush {a}"),
            Op::InvalidateLine(a) => write!(f, "inval {a}"),
            Op::LockAcquire(id) => write!(f, "lock#{id} acquire"),
            Op::LockRelease(id) => write!(f, "lock#{id} release"),
            Op::Delay(n) => write!(f, "delay {n}"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_ops() {
        let ops = [
            Op::Read(Addr::new(4)),
            Op::Write(Addr::new(8), 3),
            Op::FlushLine(Addr::new(0x20)),
            Op::InvalidateLine(Addr::new(0x40)),
            Op::LockAcquire(0),
            Op::LockRelease(0),
            Op::Delay(7),
            Op::Halt,
        ];
        let strings: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
        assert!(strings[0].contains("read"));
        assert!(strings[1].contains("<- 3"));
        assert!(strings[2].contains("flush"));
        assert!(strings[3].contains("inval"));
        assert!(strings[4].contains("acquire"));
        assert!(strings[5].contains("release"));
        assert!(strings[6].contains("delay 7"));
        assert_eq!(strings[7], "halt");
    }
}
