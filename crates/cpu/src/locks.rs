//! Lock clients — the three lock placements of paper §3–4.
//!
//! The paper's evaluation never caches lock variables ("Lock variables are
//! not cached in all simulations") and makes the two tasks acquire the
//! lock *alternately*. Three mechanisms are modelled:
//!
//! * [`LockKind::Turn`] — a turn word in uncached memory granting the lock
//!   to each party in rotation. This is the exact alternation the paper's
//!   microbenchmarks assume, with plain uncached loads/stores only.
//! * [`LockKind::HardwareRegister`] — the 1-bit hardware lock register
//!   (test-and-set on read) from §3, served by
//!   [`hmp_bus::LockRegister`].
//! * [`LockKind::Bakery`] — Lamport's Bakery algorithm on uncached words,
//!   the paper's software-only deadlock remedy (its reference \[18\]). Needs
//!   no atomic read-modify-write, only word reads/writes.

use core::fmt;
use hmp_mem::Addr;

/// Which lock mechanism a platform uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Alternating turn word (uncached memory).
    Turn,
    /// Test-and-set hardware lock register (device window).
    HardwareRegister,
    /// Lamport's Bakery algorithm (uncached memory).
    Bakery,
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockKind::Turn => write!(f, "turn"),
            LockKind::HardwareRegister => write!(f, "hw-register"),
            LockKind::Bakery => write!(f, "bakery"),
        }
    }
}

/// Address layout of the lock variables for one platform.
///
/// `base` points at the lock window (uncached memory for
/// [`LockKind::Turn`] / [`LockKind::Bakery`], a device window for
/// [`LockKind::HardwareRegister`]); `parties` is the number of
/// processors that may contend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockLayout {
    /// The mechanism.
    pub kind: LockKind,
    /// First byte of the lock variable window.
    pub base: Addr,
    /// Number of contending processors.
    pub parties: u32,
}

impl LockLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(kind: LockKind, base: Addr, parties: u32) -> Self {
        assert!(parties > 0, "a lock needs at least one party");
        LockLayout {
            kind,
            base,
            parties,
        }
    }

    /// Words of state one lock instance occupies.
    pub fn words_per_lock(&self) -> u32 {
        match self.kind {
            LockKind::Turn | LockKind::HardwareRegister => 1,
            // choosing[parties] then number[parties].
            LockKind::Bakery => 2 * self.parties,
        }
    }

    /// Total bytes the window needs for `locks` lock instances.
    pub fn window_bytes(&self, locks: u32) -> u32 {
        locks * self.words_per_lock() * 4
    }

    fn lock_base(&self, lock: u32) -> Addr {
        self.base.add_words(lock * self.words_per_lock())
    }

    /// Address of the single word of a turn or hardware-register lock.
    ///
    /// # Panics
    ///
    /// Panics for [`LockKind::Bakery`].
    pub fn word_addr(&self, lock: u32) -> Addr {
        assert!(
            self.kind != LockKind::Bakery,
            "bakery locks have no single word"
        );
        self.lock_base(lock)
    }

    /// Address of `choosing[party]` for a bakery lock.
    pub fn bakery_choosing(&self, lock: u32, party: u32) -> Addr {
        self.lock_base(lock).add_words(party)
    }

    /// Address of `number[party]` for a bakery lock.
    pub fn bakery_number(&self, lock: u32, party: u32) -> Addr {
        self.lock_base(lock).add_words(self.parties + party)
    }
}

/// The next memory operation a lock client needs, or completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LockStep {
    /// Issue an uncached/device read of the address.
    Read(Addr),
    /// Issue an uncached/device write.
    Write(Addr, u32),
    /// The acquire/release finished.
    Done,
}

/// State machine driving one acquire or release through single-word
/// memory operations.
#[derive(Debug, Clone)]
pub(crate) enum LockClient {
    TurnAcquire { addr: Addr, me: u32 },
    TurnRelease,
    HwAcquire { addr: Addr },
    HwRelease,
    BakeryAcquire(BakeryAcquire),
    BakeryRelease,
}

/// Phases of a bakery acquire for party `me` among `parties`.
#[derive(Debug, Clone)]
pub(crate) struct BakeryAcquire {
    layout: LockLayout,
    lock: u32,
    me: u32,
    state: BakeryState,
    my_number: u32,
    scan_max: u32,
    scan_j: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BakeryState {
    /// Waiting for `choosing[me] = 1` to land.
    SetChoosing,
    /// Scanning `number[j]` for the max.
    ScanNumbers,
    /// Waiting for `number[me] = max + 1` to land.
    SetNumber,
    /// Waiting for `choosing[me] = 0` to land.
    ClearChoosing,
    /// Spinning on `choosing[j]` until 0.
    WaitChoosing,
    /// Spinning on `number[j]` until it no longer precedes us.
    WaitNumber,
}

impl LockClient {
    /// Starts an acquire; returns the client and its first step.
    pub(crate) fn acquire(layout: LockLayout, lock: u32, me: u32) -> (LockClient, LockStep) {
        assert!(me < layout.parties, "party index out of range");
        match layout.kind {
            LockKind::Turn => {
                let addr = layout.word_addr(lock);
                (LockClient::TurnAcquire { addr, me }, LockStep::Read(addr))
            }
            LockKind::HardwareRegister => {
                let addr = layout.word_addr(lock);
                (LockClient::HwAcquire { addr }, LockStep::Read(addr))
            }
            LockKind::Bakery => {
                let client = BakeryAcquire {
                    layout,
                    lock,
                    me,
                    state: BakeryState::SetChoosing,
                    my_number: 0,
                    scan_max: 0,
                    scan_j: 0,
                };
                let step = LockStep::Write(layout.bakery_choosing(lock, me), 1);
                (LockClient::BakeryAcquire(client), step)
            }
        }
    }

    /// Starts a release; returns the client and its first step.
    pub(crate) fn release(layout: LockLayout, lock: u32, me: u32) -> (LockClient, LockStep) {
        assert!(me < layout.parties, "party index out of range");
        match layout.kind {
            LockKind::Turn => {
                let next = (me + 1) % layout.parties;
                (
                    LockClient::TurnRelease,
                    LockStep::Write(layout.word_addr(lock), next),
                )
            }
            LockKind::HardwareRegister => (
                LockClient::HwRelease,
                LockStep::Write(layout.word_addr(lock), 0),
            ),
            LockKind::Bakery => (
                LockClient::BakeryRelease,
                LockStep::Write(layout.bakery_number(lock, me), 0),
            ),
        }
    }

    /// Feeds the value of the read this client last issued.
    pub(crate) fn on_read_value(&mut self, value: u32) -> LockStep {
        match self {
            LockClient::TurnAcquire { addr, me } => {
                if value == *me {
                    LockStep::Done
                } else {
                    LockStep::Read(*addr) // keep spinning
                }
            }
            LockClient::HwAcquire { addr } => {
                if value == 0 {
                    LockStep::Done // test-and-set acquired
                } else {
                    LockStep::Read(*addr)
                }
            }
            LockClient::BakeryAcquire(b) => b.on_read_value(value),
            _ => panic!("lock client was not waiting for a read"),
        }
    }

    /// Signals that the write this client last issued completed.
    pub(crate) fn on_write_done(&mut self) -> LockStep {
        match self {
            LockClient::TurnRelease | LockClient::HwRelease | LockClient::BakeryRelease => {
                LockStep::Done
            }
            LockClient::BakeryAcquire(b) => b.on_write_done(),
            _ => panic!("lock client was not waiting for a write"),
        }
    }
}

impl BakeryAcquire {
    /// Advances past party `me` (and past `parties`) in the wait scan;
    /// returns the next step.
    fn next_wait(&mut self) -> LockStep {
        while self.scan_j < self.layout.parties {
            if self.scan_j == self.me {
                self.scan_j += 1;
                continue;
            }
            self.state = BakeryState::WaitChoosing;
            return LockStep::Read(self.layout.bakery_choosing(self.lock, self.scan_j));
        }
        LockStep::Done
    }

    fn on_write_done(&mut self) -> LockStep {
        match self.state {
            BakeryState::SetChoosing => {
                self.state = BakeryState::ScanNumbers;
                self.scan_j = 0;
                self.scan_max = 0;
                LockStep::Read(self.layout.bakery_number(self.lock, 0))
            }
            BakeryState::SetNumber => {
                self.state = BakeryState::ClearChoosing;
                LockStep::Write(self.layout.bakery_choosing(self.lock, self.me), 0)
            }
            BakeryState::ClearChoosing => {
                self.scan_j = 0;
                self.next_wait()
            }
            other => panic!("bakery write completion in state {other:?}"),
        }
    }

    fn on_read_value(&mut self, value: u32) -> LockStep {
        match self.state {
            BakeryState::ScanNumbers => {
                self.scan_max = self.scan_max.max(value);
                self.scan_j += 1;
                if self.scan_j < self.layout.parties {
                    LockStep::Read(self.layout.bakery_number(self.lock, self.scan_j))
                } else {
                    self.my_number = self.scan_max + 1;
                    self.state = BakeryState::SetNumber;
                    LockStep::Write(
                        self.layout.bakery_number(self.lock, self.me),
                        self.my_number,
                    )
                }
            }
            BakeryState::WaitChoosing => {
                if value != 0 {
                    // j is still choosing; spin.
                    LockStep::Read(self.layout.bakery_choosing(self.lock, self.scan_j))
                } else {
                    self.state = BakeryState::WaitNumber;
                    LockStep::Read(self.layout.bakery_number(self.lock, self.scan_j))
                }
            }
            BakeryState::WaitNumber => {
                let j = self.scan_j;
                let precedes = value != 0 && (value, j) < (self.my_number, self.me);
                if precedes {
                    // j holds a smaller ticket; spin on its number.
                    LockStep::Read(self.layout.bakery_number(self.lock, j))
                } else {
                    self.scan_j += 1;
                    self.next_wait()
                }
            }
            other => panic!("bakery read completion in state {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A scripted flat memory for driving lock clients in isolation.
    #[derive(Default)]
    struct FakeMem(HashMap<u32, u32>);

    impl FakeMem {
        fn read(&self, a: Addr) -> u32 {
            *self.0.get(&a.as_u32()).unwrap_or(&0)
        }
        fn write(&mut self, a: Addr, v: u32) {
            self.0.insert(a.as_u32(), v);
        }
    }

    /// Runs one client to completion against the memory, bounded.
    fn run_to_done(mem: &mut FakeMem, client: &mut LockClient, first: LockStep) -> u32 {
        let mut step = first;
        let mut ops = 0;
        loop {
            ops += 1;
            assert!(ops < 10_000, "lock client did not converge");
            step = match step {
                LockStep::Read(a) => {
                    let v = mem.read(a);
                    client.on_read_value(v)
                }
                LockStep::Write(a, v) => {
                    mem.write(a, v);
                    client.on_write_done()
                }
                LockStep::Done => return ops,
            };
        }
    }

    fn layout(kind: LockKind) -> LockLayout {
        LockLayout::new(kind, Addr::new(0x1000), 2)
    }

    #[test]
    fn layout_geometry() {
        let turn = layout(LockKind::Turn);
        assert_eq!(turn.words_per_lock(), 1);
        assert_eq!(turn.window_bytes(3), 12);
        assert_eq!(turn.word_addr(2), Addr::new(0x1008));

        let bakery = layout(LockKind::Bakery);
        assert_eq!(bakery.words_per_lock(), 4);
        assert_eq!(bakery.bakery_choosing(0, 1), Addr::new(0x1004));
        assert_eq!(bakery.bakery_number(0, 0), Addr::new(0x1008));
        assert_eq!(bakery.bakery_choosing(1, 0), Addr::new(0x1010));
    }

    #[test]
    #[should_panic(expected = "no single word")]
    fn bakery_word_addr_panics() {
        layout(LockKind::Bakery).word_addr(0);
    }

    #[test]
    fn turn_lock_alternates() {
        let lay = layout(LockKind::Turn);
        let mut mem = FakeMem::default(); // turn = 0 initially
                                          // Party 0 acquires instantly.
        let (mut c, s) = LockClient::acquire(lay, 0, 0);
        run_to_done(&mut mem, &mut c, s);
        // Party 1 spins: with turn = 0 its first read does not succeed.
        let (mut c1, s1) = LockClient::acquire(lay, 0, 1);
        let LockStep::Read(a) = s1 else { panic!() };
        let again = c1.on_read_value(mem.read(a));
        assert_eq!(again, LockStep::Read(a), "party 1 must spin");
        // Party 0 releases → turn = 1 → party 1 proceeds.
        let (mut r, rs) = LockClient::release(lay, 0, 0);
        run_to_done(&mut mem, &mut r, rs);
        assert_eq!(mem.read(lay.word_addr(0)), 1);
        let next = c1.on_read_value(mem.read(a));
        assert_eq!(next, LockStep::Done);
    }

    #[test]
    fn hw_register_semantics() {
        let lay = layout(LockKind::HardwareRegister);
        // Emulate the device: a read returns 0 once, then 1 until written.
        let (mut c, s) = LockClient::acquire(lay, 0, 0);
        let LockStep::Read(_) = s else { panic!() };
        assert_eq!(c.on_read_value(1), s, "held → spin");
        assert_eq!(c.on_read_value(0), LockStep::Done, "acquired");
        let (mut r, rs) = LockClient::release(lay, 0, 0);
        assert_eq!(rs, LockStep::Write(lay.word_addr(0), 0));
        assert_eq!(r.on_write_done(), LockStep::Done);
    }

    #[test]
    fn bakery_uncontended_acquire_release() {
        let lay = layout(LockKind::Bakery);
        let mut mem = FakeMem::default();
        let (mut c, s) = LockClient::acquire(lay, 0, 0);
        run_to_done(&mut mem, &mut c, s);
        assert_eq!(mem.read(lay.bakery_number(0, 0)), 1, "ticket taken");
        assert_eq!(mem.read(lay.bakery_choosing(0, 0)), 0);
        let (mut r, rs) = LockClient::release(lay, 0, 0);
        run_to_done(&mut mem, &mut r, rs);
        assert_eq!(mem.read(lay.bakery_number(0, 0)), 0, "ticket dropped");
    }

    #[test]
    fn bakery_mutual_exclusion_under_contention() {
        // Party 0 holds the lock (number[0] = 1). Party 1 must spin until
        // the ticket is dropped.
        let lay = layout(LockKind::Bakery);
        let mut mem = FakeMem::default();
        let (mut c0, s0) = LockClient::acquire(lay, 0, 0);
        run_to_done(&mut mem, &mut c0, s0);

        let (mut c1, mut step) = LockClient::acquire(lay, 0, 1);
        // Drive party 1 until it blocks reading number[0] repeatedly.
        let mut spins = 0;
        loop {
            step = match step {
                LockStep::Read(a) => {
                    let v = mem.read(a);
                    let next = c1.on_read_value(v);
                    if next == LockStep::Read(a) && a == lay.bakery_number(0, 0) {
                        spins += 1;
                        if spins > 3 {
                            break; // demonstrably spinning on 0's ticket
                        }
                    }
                    next
                }
                LockStep::Write(a, v) => {
                    mem.write(a, v);
                    c1.on_write_done()
                }
                LockStep::Done => panic!("party 1 must not acquire while 0 holds"),
            };
        }
        // Party 0 releases; party 1 now gets through.
        let (mut r0, rs0) = LockClient::release(lay, 0, 0);
        run_to_done(&mut mem, &mut r0, rs0);
        let finish = run_to_done(&mut mem, &mut c1, step);
        assert!(finish >= 1);
    }

    #[test]
    fn bakery_ticket_tie_broken_by_party_index() {
        // Both parties hold ticket 1: the lower index wins.
        let lay = layout(LockKind::Bakery);
        let mut mem = FakeMem::default();
        mem.write(lay.bakery_number(0, 0), 1);
        mem.write(lay.bakery_number(0, 1), 1);

        // Party 0 checking party 1: (1,1) vs (1,0) → 1 does not precede 0.
        let mut b0 = BakeryAcquire {
            layout: lay,
            lock: 0,
            me: 0,
            state: BakeryState::WaitNumber,
            my_number: 1,
            scan_max: 0,
            scan_j: 1,
        };
        assert_eq!(b0.on_read_value(1), LockStep::Done);

        // Party 1 checking party 0: (1,0) precedes (1,1) → spin.
        let mut b1 = BakeryAcquire {
            layout: lay,
            lock: 0,
            me: 1,
            state: BakeryState::WaitNumber,
            my_number: 1,
            scan_max: 0,
            scan_j: 0,
        };
        assert_eq!(b1.on_read_value(1), LockStep::Read(lay.bakery_number(0, 0)));
    }

    #[test]
    #[should_panic(expected = "party index out of range")]
    fn party_out_of_range_panics() {
        let _ = LockClient::acquire(layout(LockKind::Turn), 0, 5);
    }

    #[test]
    fn kind_display() {
        assert_eq!(LockKind::Turn.to_string(), "turn");
        assert_eq!(LockKind::HardwareRegister.to_string(), "hw-register");
        assert_eq!(LockKind::Bakery.to_string(), "bakery");
    }
}
