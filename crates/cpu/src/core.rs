//! The in-order, blocking CPU interpreter.

use crate::locks::{LockClient, LockLayout, LockStep};
use crate::program::Cursor;
use crate::{Op, Program};
use hmp_mem::Addr;
use hmp_sim::{ClockDomain, Cycle, Observer, SimEvent};

/// Core cycles a spin loop burns between two polls of the same location
/// (the compare/branch instructions around the load). Without this gap a
/// high-priority master's spin loop could monopolise a fixed-priority bus
/// and starve everyone else.
const SPIN_GAP_CYCLES: u32 = 3;

/// Timing of the snoop-drain interrupt service routine.
///
/// The paper (§3) notes the ARM "may or may not respond to the interrupt
/// immediately, depending on the status of the CPU pipeline"; the response
/// and entry costs model that latency deterministically. All values are in
/// **core cycles** of the interrupted CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsrConfig {
    /// Cycles between sampling nFIQ and the first ISR instruction
    /// (pipeline drain + vectoring).
    pub response_cycles: u32,
    /// ISR prologue cost before the drain/invalidate is issued.
    pub entry_cycles: u32,
    /// ISR epilogue cost after the drain completes (return from FIQ).
    pub exit_cycles: u32,
}

impl Default for IsrConfig {
    /// ARM920T FIQ costs: ~2-cycle recognition, ~4-cycle prologue (the
    /// FIQ's banked registers need no save/restore and the drain ISR is a
    /// handful of instructions), ~4-cycle epilogue.
    fn default() -> Self {
        IsrConfig {
            response_cycles: 2,
            entry_cycles: 4,
            exit_cycles: 4,
        }
    }
}

/// Static configuration of one modelled processor.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Core clock relative to the bus clock (PowerPC755: 2, ARM920T: 1).
    pub clock: ClockDomain,
    /// Snoop-ISR timing (only exercised on processors that receive nFIQ).
    pub isr: IsrConfig,
    /// Where and how lock variables live.
    pub lock_layout: LockLayout,
    /// This processor's index among the lock parties.
    pub lock_party: u32,
}

/// What kind of memory operation the CPU asks the platform to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Word load; completion must carry [`MemResult::Value`].
    Read,
    /// Word store of the value.
    Write(u32),
    /// Line drain: write back if dirty, then invalidate.
    Flush,
    /// Line invalidate (clean lines only).
    Invalidate,
}

/// A memory operation the CPU is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Operation kind.
    pub kind: ReqKind,
    /// Target address (word for loads/stores, any address in the line for
    /// maintenance ops).
    pub addr: Addr,
    /// `true` if this request is the snoop ISR's drain — the platform acks
    /// the TAG CAM when it completes.
    pub from_isr: bool,
}

/// Completion of a [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResult {
    /// A load's value.
    Value(u32),
    /// A store or maintenance op finished.
    Done,
}

/// What a core cycle produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuAction {
    /// Nothing for the platform to do (computing, blocked, or idle).
    Idle,
    /// The CPU issues a memory operation and blocks on it.
    Issue(MemRequest),
    /// The task has finished.
    Halted,
}

/// Execution state, exposed for tests and tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuState {
    /// Ready to execute the next micro-op.
    Ready,
    /// Busy with a pure-compute delay.
    Computing,
    /// Blocked on an outstanding memory operation.
    AwaitMem,
    /// Program complete.
    Halted,
}

#[derive(Debug, Clone)]
enum Exec {
    Ready,
    Computing { remaining: u32 },
    AwaitMem,
    Halted,
}

#[derive(Debug, Clone)]
enum IsrPhase {
    Entry { remaining: u32 },
    AwaitFlush,
    Exit { remaining: u32 },
}

#[derive(Debug, Clone)]
struct IsrContext {
    line: Addr,
    phase: IsrPhase,
    saved: Exec,
}

/// Per-CPU activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCounters {
    /// Program loads committed.
    pub reads: u64,
    /// Program stores committed.
    pub writes: u64,
    /// Program flush/invalidate ops committed.
    pub maintenance: u64,
    /// Lock acquisitions completed.
    pub lock_acquires: u64,
    /// Lock releases completed.
    pub lock_releases: u64,
    /// Single-word lock-protocol memory operations issued (spins included).
    pub lock_mem_ops: u64,
    /// Snoop-ISR invocations.
    pub isr_entries: u64,
    /// Core cycles spent inside the ISR (response + entry + exit, plus the
    /// cycles blocked on the drain).
    pub isr_cycles: u64,
}

/// A blocking in-order processor executing one [`Program`].
///
/// Drive it with [`Cpu::tick`] once per **core** cycle (the platform runs
/// `clock.core_cycles_per_bus_cycle()` ticks per bus cycle). When it
/// returns [`CpuAction::Issue`], perform the memory operation and call
/// [`Cpu::complete_mem`] when done — the CPU stays blocked until then.
/// Raise/clear the fast interrupt each cycle with [`Cpu::set_nfiq_line`];
/// the CPU enters its drain ISR between instructions, never while blocked
/// on memory (this is exactly the "interrupt response time" window of the
/// paper's Figure 4).
#[derive(Debug, Clone)]
pub struct Cpu {
    id: usize,
    config: CpuConfig,
    cursor: Cursor,
    exec: Exec,
    lock: Option<LockClient>,
    pending_lock_step: Option<LockStep>,
    nfiq_line: Option<Addr>,
    isr: Option<IsrContext>,
    last_lock_read: Option<Addr>,
    counters: CpuCounters,
    committed: u64,
    core_cycles: u64,
}

impl Cpu {
    /// Creates a CPU that will run `program`.
    pub fn new(id: usize, config: CpuConfig, program: Program) -> Self {
        Cpu {
            id,
            config,
            cursor: Cursor::new(program),
            exec: Exec::Ready,
            lock: None,
            pending_lock_step: None,
            nfiq_line: None,
            isr: None,
            last_lock_read: None,
            counters: CpuCounters::default(),
            committed: 0,
            core_cycles: 0,
        }
    }

    /// The CPU's platform index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The static configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Coarse execution state.
    pub fn state(&self) -> CpuState {
        match self.exec {
            Exec::Ready => CpuState::Ready,
            Exec::Computing { .. } => CpuState::Computing,
            Exec::AwaitMem => CpuState::AwaitMem,
            Exec::Halted => CpuState::Halted,
        }
    }

    /// `true` once the program has fully executed.
    pub fn is_halted(&self) -> bool {
        matches!(self.exec, Exec::Halted) && self.isr.is_none()
    }

    /// `true` while the snoop ISR is running.
    pub fn in_isr(&self) -> bool {
        self.isr.is_some()
    }

    /// Monotone progress measure: micro-ops and lock steps committed.
    /// Feed this to the platform watchdog.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Core cycles executed so far.
    pub fn core_cycles(&self) -> u64 {
        self.core_cycles
    }

    /// Activity counters.
    pub fn counters(&self) -> CpuCounters {
        self.counters
    }

    /// Reinitializes this CPU in place to run `program` from scratch
    /// (same id, config and clock): execution state, lock machinery, ISR
    /// context, counters and cycle counts all return to their
    /// construction values. The streaming cursor's frame stack is reused,
    /// so resetting with a pre-built program allocates nothing.
    pub fn reset(&mut self, program: Program) {
        self.cursor.reset(program);
        self.exec = Exec::Ready;
        self.lock = None;
        self.pending_lock_step = None;
        self.nfiq_line = None;
        self.isr = None;
        self.last_lock_read = None;
        self.counters = CpuCounters::default();
        self.committed = 0;
        self.core_cycles = 0;
    }

    /// The currently latched nFIQ input (see [`Cpu::set_nfiq_line`]).
    pub fn nfiq_line(&self) -> Option<Addr> {
        self.nfiq_line
    }

    /// Presents the level-triggered nFIQ input: `Some(line)` is the oldest
    /// line the TAG CAM wants drained, `None` deasserts.
    pub fn set_nfiq_line(&mut self, line: Option<Addr>) {
        self.nfiq_line = line;
    }

    /// Core cycles until this CPU's next externally visible event, or
    /// `None` if no event can occur without outside input (a memory
    /// completion or a change of the nFIQ line).
    ///
    /// `nfiq_pending` is whether the interrupt line *will be asserted* on
    /// the next tick — the platform samples its TAG CAM each bus cycle, so
    /// the stored `nfiq_line` may be stale between steps.
    ///
    /// The accounting matches [`Cpu::tick`] exactly: a countdown of `r`
    /// produces its transition on the `r`-th tick from now, and an
    /// interruptible CPU with a pending nFIQ vectors on the very next
    /// tick. A fast-forward kernel may therefore skip strictly fewer than
    /// the returned number of core cycles via [`Cpu::warp`].
    pub fn core_cycles_to_event(&self, nfiq_pending: bool) -> Option<u64> {
        if let Some(isr) = &self.isr {
            return match &isr.phase {
                IsrPhase::Entry { remaining } | IsrPhase::Exit { remaining } => {
                    Some(u64::from(*remaining))
                }
                // Blocked on the drain; the bus side owns the next event.
                IsrPhase::AwaitFlush => None,
            };
        }
        if nfiq_pending
            && matches!(
                self.exec,
                Exec::Ready | Exec::Computing { .. } | Exec::Halted
            )
        {
            return Some(1); // interrupt entry happens on the next tick
        }
        match &self.exec {
            Exec::Ready => Some(1), // may fetch and issue immediately
            Exec::Computing { remaining } => Some(u64::from(*remaining)),
            Exec::AwaitMem | Exec::Halted => None,
        }
    }

    /// Bulk-advances this CPU by `core_cycles` cycles during which nothing
    /// observable happens: countdowns tick down without expiring and the
    /// cycle counters advance, exactly as that many [`Cpu::tick`] calls
    /// would have done.
    ///
    /// The caller must guarantee `core_cycles` is strictly less than the
    /// last [`Cpu::core_cycles_to_event`] answer (debug-asserted): warping
    /// across an event would deliver it at the wrong cycle.
    pub fn warp(&mut self, core_cycles: u64) {
        self.core_cycles += core_cycles;
        if let Some(isr) = &mut self.isr {
            self.counters.isr_cycles += core_cycles;
            match &mut isr.phase {
                IsrPhase::Entry { remaining } | IsrPhase::Exit { remaining } => {
                    debug_assert!(
                        core_cycles < u64::from(*remaining),
                        "warp across an ISR phase expiry"
                    );
                    *remaining -= core_cycles as u32;
                }
                IsrPhase::AwaitFlush => {}
            }
            return;
        }
        if let Exec::Computing { remaining } = &mut self.exec {
            debug_assert!(
                core_cycles < u64::from(*remaining),
                "warp across a compute-delay expiry"
            );
            *remaining -= core_cycles as u32;
        }
    }

    /// Runs one core cycle.
    ///
    /// `at` is the current bus-clock time, used only to timestamp the
    /// [`SimEvent`]s this CPU emits to `obs` (ISR entry and exit).
    pub fn tick(&mut self, at: Cycle, obs: &mut impl Observer) -> CpuAction {
        self.core_cycles += 1;
        if let Some(isr) = &mut self.isr {
            self.counters.isr_cycles += 1;
            match &mut isr.phase {
                IsrPhase::Entry { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        isr.phase = IsrPhase::AwaitFlush;
                        return CpuAction::Issue(MemRequest {
                            kind: ReqKind::Flush,
                            addr: isr.line,
                            from_isr: true,
                        });
                    }
                    return CpuAction::Idle;
                }
                IsrPhase::AwaitFlush => return CpuAction::Idle,
                IsrPhase::Exit { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        let ctx = self.isr.take().expect("in ISR");
                        obs.on_event(
                            at,
                            SimEvent::IsrExit {
                                cpu: self.id,
                                line: u64::from(ctx.line.as_u32()),
                            },
                        );
                        self.exec = ctx.saved;
                        self.committed += 1; // the ISR itself is progress
                    }
                    return CpuAction::Idle;
                }
            }
        }

        // Interrupt entry happens between instructions: never while a
        // memory operation is outstanding.
        if let Some(line) = self.nfiq_line {
            if matches!(
                self.exec,
                Exec::Ready | Exec::Computing { .. } | Exec::Halted
            ) {
                let saved = std::mem::replace(&mut self.exec, Exec::Ready);
                self.counters.isr_entries += 1;
                obs.on_event(
                    at,
                    SimEvent::IsrEnter {
                        cpu: self.id,
                        line: u64::from(line.as_u32()),
                    },
                );
                self.isr = Some(IsrContext {
                    line,
                    phase: IsrPhase::Entry {
                        remaining: self.config.isr.response_cycles + self.config.isr.entry_cycles,
                    },
                    saved,
                });
                self.counters.isr_cycles += 1;
                return CpuAction::Idle;
            }
        }

        match &mut self.exec {
            Exec::Halted => CpuAction::Halted,
            Exec::AwaitMem => CpuAction::Idle,
            Exec::Computing { remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.exec = Exec::Ready;
                    self.committed += 1;
                }
                CpuAction::Idle
            }
            Exec::Ready => {
                // A lock client mid-protocol issues its next step first.
                if let Some(step) = self.pending_lock_step.take() {
                    return self.issue_lock_step(step);
                }
                match self.cursor.next_op() {
                    None | Some(Op::Halt) => {
                        self.exec = Exec::Halted;
                        CpuAction::Halted
                    }
                    Some(Op::Delay(0)) => {
                        self.committed += 1;
                        CpuAction::Idle
                    }
                    Some(Op::Delay(n)) => {
                        self.exec = Exec::Computing { remaining: n };
                        CpuAction::Idle
                    }
                    Some(Op::Read(addr)) => self.issue(ReqKind::Read, addr),
                    Some(Op::Write(addr, v)) => self.issue(ReqKind::Write(v), addr),
                    Some(Op::FlushLine(addr)) => self.issue(ReqKind::Flush, addr),
                    Some(Op::InvalidateLine(addr)) => self.issue(ReqKind::Invalidate, addr),
                    Some(Op::LockAcquire(lock)) => {
                        let (client, step) = LockClient::acquire(
                            self.config.lock_layout,
                            lock,
                            self.config.lock_party,
                        );
                        self.lock = Some(client);
                        self.issue_lock_step(step)
                    }
                    Some(Op::LockRelease(lock)) => {
                        let (client, step) = LockClient::release(
                            self.config.lock_layout,
                            lock,
                            self.config.lock_party,
                        );
                        self.lock = Some(client);
                        self.issue_lock_step(step)
                    }
                }
            }
        }
    }

    fn issue(&mut self, kind: ReqKind, addr: Addr) -> CpuAction {
        self.exec = Exec::AwaitMem;
        CpuAction::Issue(MemRequest {
            kind,
            addr,
            from_isr: false,
        })
    }

    fn issue_lock_step(&mut self, step: LockStep) -> CpuAction {
        match step {
            LockStep::Read(addr) => {
                self.counters.lock_mem_ops += 1;
                self.last_lock_read = Some(addr);
                self.issue(ReqKind::Read, addr)
            }
            LockStep::Write(addr, v) => {
                self.counters.lock_mem_ops += 1;
                self.issue(ReqKind::Write(v), addr)
            }
            LockStep::Done => unreachable!("Done is consumed at completion"),
        }
    }

    /// Completes the outstanding memory operation.
    ///
    /// # Panics
    ///
    /// Panics if nothing is outstanding, or if a load completes without a
    /// value.
    pub fn complete_mem(&mut self, result: MemResult) {
        // ISR drain completion?
        if let Some(isr) = &mut self.isr {
            if matches!(isr.phase, IsrPhase::AwaitFlush) {
                assert_eq!(result, MemResult::Done, "flush yields no value");
                isr.phase = IsrPhase::Exit {
                    remaining: self.config.isr.exit_cycles.max(1),
                };
                return;
            }
        }
        assert!(
            matches!(self.exec, Exec::AwaitMem),
            "cpu{} completion without an outstanding request",
            self.id
        );
        if let Some(client) = &mut self.lock {
            let step = match result {
                MemResult::Value(v) => client.on_read_value(v),
                MemResult::Done => client.on_write_done(),
            };
            self.committed += 1;
            // Re-polling the same location is a spin iteration: burn the
            // loop's compare/branch cycles before hitting the bus again.
            let is_spin = matches!(step, LockStep::Read(a) if Some(a) == self.last_lock_read);
            if step == LockStep::Done {
                let was_release = matches!(
                    self.lock,
                    Some(LockClient::TurnRelease)
                        | Some(LockClient::HwRelease)
                        | Some(LockClient::BakeryRelease)
                );
                if was_release {
                    self.counters.lock_releases += 1;
                } else {
                    self.counters.lock_acquires += 1;
                }
                self.lock = None;
                self.pending_lock_step = None;
                self.exec = Exec::Ready;
            } else {
                self.pending_lock_step = Some(step);
                self.exec = if is_spin {
                    Exec::Computing {
                        remaining: SPIN_GAP_CYCLES,
                    }
                } else {
                    Exec::Ready
                };
            }
            return;
        }
        match result {
            MemResult::Value(_) => self.counters.reads += 1,
            MemResult::Done => {
                // Writes and maintenance ops both end here; split by what
                // was issued is not tracked, so count coarsely as a write
                // unless the caller used Flush/Invalidate — the platform
                // keeps finer-grained stats.
                self.counters.writes += 1;
            }
        }
        self.committed += 1;
        self.exec = Exec::Ready;
    }

    /// Like [`Cpu::complete_mem`] but records the op as cache maintenance
    /// rather than a store (the platform knows which request it served).
    pub fn complete_maintenance(&mut self) {
        if let Some(isr) = &mut self.isr {
            if matches!(isr.phase, IsrPhase::AwaitFlush) {
                isr.phase = IsrPhase::Exit {
                    remaining: self.config.isr.exit_cycles.max(1),
                };
                return;
            }
        }
        assert!(
            matches!(self.exec, Exec::AwaitMem),
            "cpu{} completion without an outstanding request",
            self.id
        );
        self.counters.maintenance += 1;
        self.committed += 1;
        self.exec = Exec::Ready;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockKind, ProgramBuilder};
    use hmp_sim::NullObserver;

    fn config() -> CpuConfig {
        CpuConfig {
            clock: ClockDomain::new(1),
            // Explicit (not default) timing so the step-count assertions
            // below stay valid if the defaults are retuned.
            isr: IsrConfig {
                response_cycles: 4,
                entry_cycles: 12,
                exit_cycles: 8,
            },
            lock_layout: LockLayout::new(LockKind::Turn, Addr::new(0x8000), 2),
            lock_party: 0,
        }
    }

    fn prog_read_write() -> Program {
        ProgramBuilder::new()
            .read(Addr::new(0x100))
            .write(Addr::new(0x104), 7)
            .build()
    }

    #[test]
    fn executes_reads_and_writes_in_order() {
        let mut cpu = Cpu::new(0, config(), prog_read_write());
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("expected issue");
        };
        assert_eq!(req.kind, ReqKind::Read);
        assert_eq!(req.addr, Addr::new(0x100));
        assert!(!req.from_isr);
        assert_eq!(cpu.state(), CpuState::AwaitMem);
        assert_eq!(
            cpu.tick(Cycle::ZERO, &mut NullObserver),
            CpuAction::Idle,
            "blocked"
        );
        cpu.complete_mem(MemResult::Value(1));
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("expected issue");
        };
        assert_eq!(req.kind, ReqKind::Write(7));
        cpu.complete_mem(MemResult::Done);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
        assert!(cpu.is_halted());
        assert_eq!(cpu.counters().reads, 1);
        assert_eq!(cpu.counters().writes, 1);
        assert_eq!(cpu.committed(), 2);
    }

    #[test]
    fn delay_computes_for_n_cycles() {
        let p = ProgramBuilder::new().delay(3).build();
        let mut cpu = Cpu::new(0, config(), p);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle); // fetch, start computing
        assert_eq!(cpu.state(), CpuState::Computing);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert_eq!(cpu.state(), CpuState::Computing); // hmm: 3 decrements?
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
        assert_eq!(cpu.core_cycles(), 5);
    }

    #[test]
    fn turn_lock_acquire_spins_until_turn() {
        let mut cpu = Cpu::new(0, config(), ProgramBuilder::new().acquire(0).build());
        // Party 0, turn word reads 1 → spin; then 0 → acquired.
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        assert_eq!(req.kind, ReqKind::Read);
        assert_eq!(req.addr, Addr::new(0x8000));
        cpu.complete_mem(MemResult::Value(1)); // not my turn
                                               // A spin iteration burns the loop's compare/branch cycles first.
        for _ in 0..3 {
            assert_eq!(
                cpu.tick(Cycle::ZERO, &mut NullObserver),
                CpuAction::Idle,
                "spin gap"
            );
        }
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        assert_eq!(req.addr, Addr::new(0x8000));
        cpu.complete_mem(MemResult::Value(0)); // my turn
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
        assert_eq!(cpu.counters().lock_acquires, 1);
        assert_eq!(cpu.counters().lock_mem_ops, 2);
    }

    #[test]
    fn lock_release_writes_next_turn() {
        let mut cpu = Cpu::new(0, config(), ProgramBuilder::new().release(0).build());
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        assert_eq!(req.kind, ReqKind::Write(1), "pass turn to party 1");
        cpu.complete_mem(MemResult::Done);
        assert_eq!(cpu.counters().lock_releases, 1);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
    }

    #[test]
    fn maintenance_ops_counted_separately() {
        let p = ProgramBuilder::new()
            .flush(Addr::new(0x200))
            .invalidate(Addr::new(0x240))
            .build();
        let mut cpu = Cpu::new(0, config(), p);
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        assert_eq!(req.kind, ReqKind::Flush);
        cpu.complete_maintenance();
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        assert_eq!(req.kind, ReqKind::Invalidate);
        cpu.complete_maintenance();
        assert_eq!(cpu.counters().maintenance, 2);
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
    }

    #[test]
    fn nfiq_enters_isr_between_instructions() {
        let cfg = config();
        let mut cpu = Cpu::new(1, cfg, prog_read_write());
        // Block on the first read…
        let CpuAction::Issue(_) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        cpu.set_nfiq_line(Some(Addr::new(0x300)));
        // …interrupt cannot be taken while blocked.
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert!(!cpu.in_isr());
        cpu.complete_mem(MemResult::Value(0));
        // Now Ready → the next tick vectors into the ISR.
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert!(cpu.in_isr());
        // response(4) + entry(12) = 16 countdown cycles after vectoring.
        let mut flush_req = None;
        for _ in 0..16 {
            if let CpuAction::Issue(r) = cpu.tick(Cycle::ZERO, &mut NullObserver) {
                flush_req = Some(r);
                break;
            }
        }
        let r = flush_req.expect("ISR issues the drain");
        assert_eq!(r.kind, ReqKind::Flush);
        assert_eq!(r.addr, Addr::new(0x300));
        assert!(r.from_isr);
        // Drain completes; exit takes 8 cycles, then the program resumes.
        cpu.set_nfiq_line(None);
        cpu.complete_maintenance();
        for _ in 0..8 {
            assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        }
        assert!(!cpu.in_isr());
        let CpuAction::Issue(req) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("program resumes")
        };
        assert_eq!(req.kind, ReqKind::Write(7));
        assert_eq!(cpu.counters().isr_entries, 1);
        assert!(cpu.counters().isr_cycles >= 24);
    }

    #[test]
    fn halted_cpu_still_services_interrupts() {
        // BCS: the ARM may finish its program while its cache still holds
        // shared lines the PowerPC needs drained.
        let mut cpu = Cpu::new(0, config(), Program::empty());
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Halted);
        assert!(cpu.is_halted());
        cpu.set_nfiq_line(Some(Addr::new(0x500)));
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert!(cpu.in_isr());
        assert!(!cpu.is_halted(), "ISR keeps the CPU busy");
        let mut got = None;
        for _ in 0..20 {
            if let CpuAction::Issue(r) = cpu.tick(Cycle::ZERO, &mut NullObserver) {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got.map(|r| r.addr), Some(Addr::new(0x500)));
        cpu.set_nfiq_line(None);
        cpu.complete_maintenance();
        for _ in 0..8 {
            cpu.tick(Cycle::ZERO, &mut NullObserver);
        }
        assert!(cpu.is_halted(), "returns to halted state after ISR");
    }

    #[test]
    fn interrupt_does_not_clobber_lock_spin() {
        let mut cpu = Cpu::new(0, config(), ProgramBuilder::new().acquire(0).build());
        let CpuAction::Issue(_) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!()
        };
        cpu.complete_mem(MemResult::Value(1)); // spin: next step pending
        cpu.set_nfiq_line(Some(Addr::new(0x700)));
        assert_eq!(cpu.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
        assert!(cpu.in_isr());
        // Run the ISR to completion.
        loop {
            match cpu.tick(Cycle::ZERO, &mut NullObserver) {
                CpuAction::Issue(r) if r.from_isr => {
                    cpu.set_nfiq_line(None);
                    cpu.complete_maintenance();
                }
                CpuAction::Idle if !cpu.in_isr() => break,
                _ => {}
            }
        }
        // The spin resumes where it left off (after the remaining spin-gap
        // cycles the interrupt pre-empted).
        let mut resumed = None;
        for _ in 0..5 {
            if let CpuAction::Issue(r) = cpu.tick(Cycle::ZERO, &mut NullObserver) {
                resumed = Some(r);
                break;
            }
        }
        let req = resumed.expect("spin read resumes");
        assert_eq!(req.kind, ReqKind::Read);
        assert_eq!(req.addr, Addr::new(0x8000));
    }

    #[test]
    #[should_panic(expected = "completion without an outstanding request")]
    fn completion_when_ready_panics() {
        let mut cpu = Cpu::new(0, config(), prog_read_write());
        cpu.complete_mem(MemResult::Done);
    }

    #[test]
    fn accessors() {
        let cpu = Cpu::new(3, config(), Program::empty());
        assert_eq!(cpu.id(), 3);
        assert_eq!(cpu.config().lock_party, 0);
        assert_eq!(cpu.state(), CpuState::Ready);
        assert_eq!(cpu.core_cycles(), 0);
    }

    #[test]
    fn next_event_reflects_exec_state() {
        let mut cpu = Cpu::new(0, config(), ProgramBuilder::new().delay(5).build());
        assert_eq!(cpu.core_cycles_to_event(false), Some(1), "Ready may issue");
        cpu.tick(Cycle::ZERO, &mut NullObserver); // fetch → Computing{5}
        assert_eq!(cpu.core_cycles_to_event(false), Some(5));
        assert_eq!(
            cpu.core_cycles_to_event(true),
            Some(1),
            "a pending nFIQ pre-empts the compute countdown"
        );
        // Blocked CPUs have no self-generated events.
        let mut blocked = Cpu::new(1, config(), prog_read_write());
        blocked.tick(Cycle::ZERO, &mut NullObserver); // issues the read
        assert_eq!(blocked.state(), CpuState::AwaitMem);
        assert_eq!(blocked.core_cycles_to_event(false), None);
        assert_eq!(
            blocked.core_cycles_to_event(true),
            None,
            "interrupt entry never happens while blocked on memory"
        );
    }

    #[test]
    fn next_event_tracks_isr_phases() {
        let mut cpu = Cpu::new(0, config(), Program::empty());
        cpu.tick(Cycle::ZERO, &mut NullObserver); // Halted
        assert_eq!(cpu.core_cycles_to_event(false), None);
        assert_eq!(cpu.core_cycles_to_event(true), Some(1));
        cpu.set_nfiq_line(Some(Addr::new(0x500)));
        cpu.tick(Cycle::ZERO, &mut NullObserver); // vector into the ISR
        assert!(cpu.in_isr());
        // response(4) + entry(12) countdown.
        assert_eq!(cpu.core_cycles_to_event(false), Some(16));
        let mut issued = false;
        for _ in 0..16 {
            if let CpuAction::Issue(_) = cpu.tick(Cycle::ZERO, &mut NullObserver) {
                issued = true;
            }
        }
        assert!(issued, "entry countdown expired");
        assert_eq!(
            cpu.core_cycles_to_event(true),
            None,
            "AwaitFlush waits on the bus even with nFIQ still asserted"
        );
        cpu.set_nfiq_line(None);
        cpu.complete_maintenance();
        assert_eq!(cpu.core_cycles_to_event(false), Some(8), "exit countdown");
    }

    #[test]
    fn warp_matches_repeated_idle_ticks() {
        // Two identical CPUs mid-delay: warping one by k must leave it in
        // the same state as ticking the other k times.
        let p = || {
            ProgramBuilder::new()
                .delay(10)
                .read(Addr::new(0x100))
                .build()
        };
        let mut warped = Cpu::new(0, config(), p());
        let mut stepped = Cpu::new(0, config(), p());
        for cpu in [&mut warped, &mut stepped] {
            cpu.tick(Cycle::ZERO, &mut NullObserver); // fetch → Computing{10}
        }
        warped.warp(7);
        for _ in 0..7 {
            assert_eq!(
                stepped.tick(Cycle::ZERO, &mut NullObserver),
                CpuAction::Idle
            );
        }
        assert_eq!(warped.core_cycles(), stepped.core_cycles());
        assert_eq!(warped.core_cycles_to_event(false), Some(3));
        assert_eq!(stepped.core_cycles_to_event(false), Some(3));
        // Both finish the delay and issue the read on the same tick.
        for _ in 0..3 {
            assert_eq!(warped.tick(Cycle::ZERO, &mut NullObserver), CpuAction::Idle);
            assert_eq!(
                stepped.tick(Cycle::ZERO, &mut NullObserver),
                CpuAction::Idle
            );
        }
        let CpuAction::Issue(a) = warped.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("warped CPU issues");
        };
        let CpuAction::Issue(b) = stepped.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("stepped CPU issues");
        };
        assert_eq!(a, b);
        assert_eq!(warped.committed(), stepped.committed());
    }

    #[test]
    fn warp_advances_isr_countdown_and_counters() {
        let mut cpu = Cpu::new(0, config(), Program::empty());
        cpu.tick(Cycle::ZERO, &mut NullObserver); // Halted
        cpu.set_nfiq_line(Some(Addr::new(0x500)));
        cpu.tick(Cycle::ZERO, &mut NullObserver); // ISR entry
        let isr_before = cpu.counters().isr_cycles;
        cpu.warp(15); // entry countdown is 16
        assert_eq!(cpu.counters().isr_cycles, isr_before + 15);
        assert_eq!(cpu.core_cycles_to_event(false), Some(1));
        let CpuAction::Issue(r) = cpu.tick(Cycle::ZERO, &mut NullObserver) else {
            panic!("drain issues on the expiry tick");
        };
        assert!(r.from_isr);
    }
}
