//! Programs: micro-op sequences with counted loops.

use crate::Op;
use hmp_mem::Addr;

/// One statement of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A single micro-op.
    Op(Op),
    /// Execute the body the given number of times.
    Repeat(u32, Vec<Stmt>),
}

/// A task: a finite tree of statements executed once, then the CPU halts.
///
/// Programs are streamed op by op inside the CPU (a private cursor walks
/// the statement tree); loops are interpreted with a frame stack, so a
/// million-iteration benchmark does not materialise a million ops.
///
/// # Examples
///
/// ```
/// use hmp_cpu::{Op, ProgramBuilder};
/// use hmp_mem::Addr;
///
/// let prog = ProgramBuilder::new()
///     .acquire(0)
///     .repeat(2, |b| b.read(Addr::new(0x100)).write(Addr::new(0x100), 1))
///     .release(0)
///     .build();
/// assert_eq!(prog.flatten().len(), 1 + 2 * 2 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    body: Vec<Stmt>,
}

impl Program {
    /// An empty program (halts immediately).
    pub fn empty() -> Self {
        Program::default()
    }

    /// The top-level statements.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Expands every loop, returning the full op sequence. Intended for
    /// tests and debugging — execution streams instead.
    pub fn flatten(&self) -> Vec<Op> {
        fn walk(stmts: &[Stmt], out: &mut Vec<Op>) {
            for s in stmts {
                match s {
                    Stmt::Op(op) => out.push(*op),
                    Stmt::Repeat(n, body) => {
                        for _ in 0..*n {
                            walk(body, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Total op count after loop expansion (without materialising them).
    pub fn op_count(&self) -> u64 {
        fn count(stmts: &[Stmt]) -> u64 {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Op(_) => 1,
                    Stmt::Repeat(n, body) => u64::from(*n) * count(body),
                })
                .sum()
        }
        count(&self.body)
    }
}

/// Builder for [`Program`]s.
///
/// Methods append statements and return the builder for chaining;
/// [`ProgramBuilder::repeat`] nests through a closure.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    body: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends a raw op.
    pub fn op(mut self, op: Op) -> Self {
        self.body.push(Stmt::Op(op));
        self
    }

    /// Appends a load.
    pub fn read(self, addr: Addr) -> Self {
        self.op(Op::Read(addr))
    }

    /// Appends a store.
    pub fn write(self, addr: Addr, value: u32) -> Self {
        self.op(Op::Write(addr, value))
    }

    /// Appends a line drain (write back if dirty + invalidate).
    pub fn flush(self, addr: Addr) -> Self {
        self.op(Op::FlushLine(addr))
    }

    /// Appends a line invalidate.
    pub fn invalidate(self, addr: Addr) -> Self {
        self.op(Op::InvalidateLine(addr))
    }

    /// Appends a lock acquisition.
    pub fn acquire(self, lock: u32) -> Self {
        self.op(Op::LockAcquire(lock))
    }

    /// Appends a lock release.
    pub fn release(self, lock: u32) -> Self {
        self.op(Op::LockRelease(lock))
    }

    /// Appends a pure-compute delay.
    pub fn delay(self, cycles: u32) -> Self {
        self.op(Op::Delay(cycles))
    }

    /// Appends `count` repetitions of the statements built by `f`.
    pub fn repeat(mut self, count: u32, f: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> Self {
        let inner = f(ProgramBuilder::new());
        self.body.push(Stmt::Repeat(count, inner.body));
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program { body: self.body }
    }
}

/// A streaming cursor over a program's ops, interpreting loops with a
/// frame stack.
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    program: Program,
    /// (statement index, iterations remaining at this level) per frame;
    /// frame 0 is the program body with 1 iteration.
    frames: Vec<Frame>,
}

#[derive(Debug, Clone)]
struct Frame {
    /// Which Repeat's body this frame walks; `None` = top level.
    path: Vec<usize>,
    index: usize,
    remaining: u32,
}

impl Cursor {
    pub(crate) fn new(program: Program) -> Self {
        Cursor {
            program,
            frames: vec![Frame {
                path: Vec::new(),
                index: 0,
                remaining: 1,
            }],
        }
    }

    /// Rewinds the cursor onto a fresh program, reusing the frame stack's
    /// allocation (the pushed root frame has an empty path, so resetting
    /// with a pre-built program allocates nothing).
    pub(crate) fn reset(&mut self, program: Program) {
        self.program = program;
        self.frames.clear();
        self.frames.push(Frame {
            path: Vec::new(),
            index: 0,
            remaining: 1,
        });
    }

    fn stmts_at<'a>(program: &'a Program, path: &[usize]) -> &'a [Stmt] {
        let mut stmts: &[Stmt] = program.body();
        for &i in path {
            let Stmt::Repeat(_, body) = &stmts[i] else {
                unreachable!("cursor paths always index Repeat statements");
            };
            stmts = body;
        }
        stmts
    }

    /// Produces the next op, or `None` when the program is exhausted.
    pub(crate) fn next_op(&mut self) -> Option<Op> {
        loop {
            let frame = self.frames.last_mut()?;
            let stmts = Self::stmts_at(&self.program, &frame.path);
            if frame.index >= stmts.len() {
                // End of this body: loop again or pop.
                if frame.remaining > 1 {
                    frame.remaining -= 1;
                    frame.index = 0;
                    continue;
                }
                self.frames.pop();
                if let Some(parent) = self.frames.last_mut() {
                    parent.index += 1;
                }
                continue;
            }
            match &stmts[frame.index] {
                Stmt::Op(op) => {
                    let op = *op;
                    frame.index += 1;
                    return Some(op);
                }
                Stmt::Repeat(n, _) => {
                    if *n == 0 {
                        frame.index += 1;
                        continue;
                    }
                    let mut path = frame.path.clone();
                    path.push(frame.index);
                    let n = *n;
                    self.frames.push(Frame {
                        path,
                        index: 0,
                        remaining: n,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Addr {
        Addr::new(n)
    }

    #[test]
    fn builder_produces_expected_sequence() {
        let p = ProgramBuilder::new()
            .read(a(0))
            .write(a(4), 1)
            .flush(a(0x20))
            .invalidate(a(0x40))
            .acquire(0)
            .release(0)
            .delay(3)
            .build();
        assert_eq!(
            p.flatten(),
            vec![
                Op::Read(a(0)),
                Op::Write(a(4), 1),
                Op::FlushLine(a(0x20)),
                Op::InvalidateLine(a(0x40)),
                Op::LockAcquire(0),
                Op::LockRelease(0),
                Op::Delay(3),
            ]
        );
        assert_eq!(p.op_count(), 7);
    }

    #[test]
    fn nested_repeats_expand() {
        let p = ProgramBuilder::new()
            .repeat(2, |b| b.read(a(0)).repeat(3, |b| b.write(a(4), 9)))
            .build();
        let flat = p.flatten();
        assert_eq!(flat.len(), 2 * (1 + 3));
        assert_eq!(p.op_count(), 8);
        assert_eq!(flat[0], Op::Read(a(0)));
        assert_eq!(flat[1], Op::Write(a(4), 9));
    }

    #[test]
    fn cursor_streams_same_as_flatten() {
        let p = ProgramBuilder::new()
            .read(a(0))
            .repeat(3, |b| b.write(a(4), 1).repeat(2, |b| b.read(a(8))))
            .delay(1)
            .build();
        let mut cur = Cursor::new(p.clone());
        let mut streamed = Vec::new();
        while let Some(op) = cur.next_op() {
            streamed.push(op);
        }
        assert_eq!(streamed, p.flatten());
    }

    #[test]
    fn zero_repeat_is_skipped() {
        let p = ProgramBuilder::new()
            .repeat(0, |b| b.read(a(0)))
            .delay(1)
            .build();
        assert_eq!(p.flatten(), vec![Op::Delay(1)]);
        let mut cur = Cursor::new(p);
        assert_eq!(cur.next_op(), Some(Op::Delay(1)));
        assert_eq!(cur.next_op(), None);
    }

    #[test]
    fn empty_program_yields_nothing() {
        let p = Program::empty();
        assert_eq!(p.op_count(), 0);
        assert!(p.body().is_empty());
        let mut cur = Cursor::new(p);
        assert_eq!(cur.next_op(), None);
        assert_eq!(cur.next_op(), None, "exhausted cursor stays exhausted");
    }

    #[test]
    fn deep_nesting() {
        let p = ProgramBuilder::new()
            .repeat(2, |b| b.repeat(2, |b| b.repeat(2, |b| b.read(a(0)))))
            .build();
        assert_eq!(p.op_count(), 8);
        let mut cur = Cursor::new(p);
        let mut n = 0;
        while cur.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
